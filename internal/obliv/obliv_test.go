package obliv

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSelect64(t *testing.T) {
	if got := Select64(1, 7, 9); got != 7 {
		t.Errorf("Select64(1,7,9) = %d, want 7", got)
	}
	if got := Select64(0, 7, 9); got != 9 {
		t.Errorf("Select64(0,7,9) = %d, want 9", got)
	}
}

func TestSelectInt(t *testing.T) {
	if got := SelectInt(1, -3, 5); got != -3 {
		t.Errorf("SelectInt(1,-3,5) = %d, want -3", got)
	}
	if got := SelectInt(0, -3, 5); got != 5 {
		t.Errorf("SelectInt(0,-3,5) = %d, want 5", got)
	}
}

func TestEqNeq64Property(t *testing.T) {
	f := func(a, b uint64) bool {
		wantEq := uint64(0)
		if a == b {
			wantEq = 1
		}
		return Eq64(a, b) == wantEq && Neq64(a, b) == 1-wantEq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Eq64(5, 5) != 1 || Eq64(0, 0) != 1 || Eq64(^uint64(0), ^uint64(0)) != 1 {
		t.Error("Eq64 failed on equal values")
	}
}

func TestLtGe64Property(t *testing.T) {
	f := func(a, b uint64) bool {
		wantLt := uint64(0)
		if a < b {
			wantLt = 1
		}
		return Lt64(a, b) == wantLt && Ge64(a, b) == 1-wantLt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Boundary cases that random testing is unlikely to hit.
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 0},
		{^uint64(0), 0, 0}, {0, ^uint64(0), 1},
		{^uint64(0), ^uint64(0), 0},
		{1 << 63, (1 << 63) - 1, 0}, {(1 << 63) - 1, 1 << 63, 1},
	}
	for _, c := range cases {
		if got := Lt64(c.a, c.b); got != c.want {
			t.Errorf("Lt64(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBoolCombinators(t *testing.T) {
	if And(1, 1) != 1 || And(1, 0) != 0 || And(0, 1) != 0 || And(0, 0) != 0 {
		t.Error("And truth table wrong")
	}
	if Or(1, 1) != 1 || Or(1, 0) != 1 || Or(0, 1) != 1 || Or(0, 0) != 0 {
		t.Error("Or truth table wrong")
	}
	if Not(0) != 1 || Not(1) != 0 {
		t.Error("Not truth table wrong")
	}
}

func TestCondAssignAndSwap(t *testing.T) {
	a, b := uint64(3), uint64(8)
	CondSwap64(0, &a, &b)
	if a != 3 || b != 8 {
		t.Errorf("CondSwap64(0) changed values: %d %d", a, b)
	}
	CondSwap64(1, &a, &b)
	if a != 8 || b != 3 {
		t.Errorf("CondSwap64(1) did not swap: %d %d", a, b)
	}
	var dst uint64 = 1
	CondAssign64(0, &dst, 99)
	if dst != 1 {
		t.Errorf("CondAssign64(0) wrote: %d", dst)
	}
	CondAssign64(1, &dst, 99)
	if dst != 99 {
		t.Errorf("CondAssign64(1) did not write: %d", dst)
	}
}

func TestCondCopyBytes(t *testing.T) {
	dst := []byte{1, 2, 3}
	src := []byte{9, 8, 7}
	CondCopy(0, dst, src)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Errorf("CondCopy(0) modified dst: %v", dst)
	}
	CondCopy(1, dst, src)
	if dst[0] != 9 || dst[1] != 8 || dst[2] != 7 {
		t.Errorf("CondCopy(1) did not copy: %v", dst)
	}
}

func TestCondCopyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CondCopy with mismatched lengths did not panic")
		}
	}()
	CondCopy(1, make([]byte, 2), make([]byte, 3))
}

func TestCondSwapBytes(t *testing.T) {
	a := []byte{1, 2}
	b := []byte{3, 4}
	CondSwapBytes(0, a, b)
	if a[0] != 1 || b[0] != 3 {
		t.Error("CondSwapBytes(0) swapped")
	}
	CondSwapBytes(1, a, b)
	if a[0] != 3 || a[1] != 4 || b[0] != 1 || b[1] != 2 {
		t.Error("CondSwapBytes(1) did not swap")
	}
}

func TestCondCopy64s(t *testing.T) {
	dst := []uint64{1, 2}
	src := []uint64{5, 6}
	CondCopy64s(0, dst, src)
	if dst[0] != 1 {
		t.Error("CondCopy64s(0) copied")
	}
	CondCopy64s(1, dst, src)
	if dst[0] != 5 || dst[1] != 6 {
		t.Error("CondCopy64s(1) did not copy")
	}
}

func TestScanGatherScatter(t *testing.T) {
	arr := []uint64{10, 20, 30, 40}
	for i, want := range arr {
		if got := ScanGather(arr, uint64(i)); got != want {
			t.Errorf("ScanGather(%d) = %d, want %d", i, got, want)
		}
	}
	// Out-of-range index yields zero (no hit).
	if got := ScanGather(arr, 100); got != 0 {
		t.Errorf("ScanGather(out of range) = %d, want 0", got)
	}
	ScanScatter(arr, 2, 99)
	if arr[2] != 99 || arr[0] != 10 || arr[3] != 40 {
		t.Errorf("ScanScatter wrote wrong slot: %v", arr)
	}
}

func TestScanGatherScatterBytes(t *testing.T) {
	const bs = 4
	arr := make([]byte, 3*bs)
	for i := range arr {
		arr[i] = byte(i)
	}
	dst := make([]byte, bs)
	ScanGatherBytes(arr, bs, 1, dst)
	for i := 0; i < bs; i++ {
		if dst[i] != byte(bs+i) {
			t.Fatalf("ScanGatherBytes got %v", dst)
		}
	}
	src := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	ScanScatterBytes(arr, bs, 2, src)
	if arr[2*bs] != 0xAA || arr[2*bs+3] != 0xDD || arr[0] != 0 {
		t.Fatalf("ScanScatterBytes wrote wrong region: %v", arr)
	}
}

func mapUnion(reqs []uint64) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, r := range reqs {
		if r == InvalidID || seen[r] {
			continue
		}
		seen[r] = true
		out = append(out, r)
	}
	return out
}

func TestUnionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(40)
		reqs := make([]uint64, k)
		for i := range reqs {
			reqs[i] = uint64(rng.Intn(10)) // small domain forces duplicates
		}
		got := Union(reqs)
		want := mapUnion(reqs)
		if got.Size != len(want) {
			t.Fatalf("trial %d: size %d, want %d (reqs %v)", trial, got.Size, len(want), reqs)
		}
		for i, w := range want {
			if got.IDs[i] != w {
				t.Fatalf("trial %d: IDs[%d]=%d want %d", trial, i, got.IDs[i], w)
			}
		}
		for i := got.Size; i < len(got.IDs); i++ {
			if got.IDs[i] != InvalidID {
				t.Fatalf("trial %d: tail slot %d not InvalidID", trial, i)
			}
		}
	}
}

func TestUnionIgnoresDummyRequests(t *testing.T) {
	reqs := []uint64{5, InvalidID, 5, InvalidID, 7}
	got := Union(reqs)
	if got.Size != 2 || got.IDs[0] != 5 || got.IDs[1] != 7 {
		t.Errorf("Union with dummies = %+v", got)
	}
}

func TestUnionEmpty(t *testing.T) {
	got := Union(nil)
	if got.Size != 0 || len(got.IDs) != 0 {
		t.Errorf("Union(nil) = %+v", got)
	}
}

func TestUnionChunked(t *testing.T) {
	reqs := []uint64{1, 2, 1, 3, 3, 4, 5}
	chunks := UnionChunked(reqs, 3)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	// Chunk 0: {1,2}; chunk 1: {3,4} (dedupes 3 within chunk);
	// chunk 2: {5}. Duplicate 1 across chunks 0/0 stays merged only
	// within its chunk; 3 appears once per containing chunk.
	if chunks[0].Size != 2 || chunks[1].Size != 2 || chunks[2].Size != 1 {
		t.Errorf("chunk sizes = %d %d %d", chunks[0].Size, chunks[1].Size, chunks[2].Size)
	}
}

func TestUnionChunkedBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UnionChunked(chunkSize=0) did not panic")
		}
	}()
	UnionChunked([]uint64{1}, 0)
}

func TestUnionScanCost(t *testing.T) {
	if got := UnionScanCost(10); got != 200 {
		t.Errorf("UnionScanCost(10) = %d, want 200", got)
	}
	// Chunked cost: 7 reqs, chunk 3 -> 2*(9+9+1) = 38.
	if got := UnionChunkedScanCost(7, 3); got != 38 {
		t.Errorf("UnionChunkedScanCost(7,3) = %d, want 38", got)
	}
	// Chunking must never cost more than the monolithic scan.
	for k := 1; k < 100; k += 7 {
		if UnionChunkedScanCost(k, 16) > UnionScanCost(k) {
			t.Errorf("chunked cost exceeds monolithic at k=%d", k)
		}
	}
}

func TestBitonicSortKV(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(50)
		kvs := make([]KV, n)
		for i := range kvs {
			kvs[i] = KV{Key: uint64(rng.Intn(20)), Val: uint64(i)}
		}
		BitonicSortKV(kvs)
		for i := 1; i < n; i++ {
			if kvs[i-1].Key > kvs[i].Key {
				t.Fatalf("trial %d: not sorted at %d: %v", trial, i, kvs)
			}
		}
	}
}

func TestBitonicSortPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 37
	kvs := make([]KV, n)
	count := map[uint64]int{}
	for i := range kvs {
		k := uint64(rng.Intn(8))
		kvs[i] = KV{Key: k, Val: k * 10}
		count[k]++
	}
	BitonicSortKV(kvs)
	for _, kv := range kvs {
		count[kv.Key]--
		if kv.Val != kv.Key*10 {
			t.Fatalf("value separated from key: %+v", kv)
		}
	}
	for k, c := range count {
		if c != 0 {
			t.Fatalf("key %d count off by %d", k, c)
		}
	}
}

func TestCompactIDs(t *testing.T) {
	ids := []uint64{InvalidID, 4, InvalidID, 9, 2, InvalidID}
	n := CompactIDs(ids)
	if n != 3 {
		t.Fatalf("CompactIDs count = %d, want 3", n)
	}
	want := []uint64{4, 9, 2}
	for i, w := range want {
		if ids[i] != w {
			t.Errorf("ids[%d] = %d, want %d (order must be preserved)", i, ids[i], w)
		}
	}
	for i := n; i < len(ids); i++ {
		if ids[i] != InvalidID {
			t.Errorf("tail slot %d = %d, want InvalidID", i, ids[i])
		}
	}
}

func TestCompactIDsAllDummy(t *testing.T) {
	ids := []uint64{InvalidID, InvalidID}
	if n := CompactIDs(ids); n != 0 {
		t.Errorf("CompactIDs(all dummy) = %d, want 0", n)
	}
}

func BenchmarkUnion1K(b *testing.B) {
	reqs := make([]uint64, 1024)
	rng := rand.New(rand.NewSource(4))
	for i := range reqs {
		reqs[i] = uint64(rng.Intn(256))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(reqs)
	}
}

func TestUnionSortedMatchesUnionAsSet(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(60)
		reqs := make([]uint64, k)
		for i := range reqs {
			if rng.Intn(8) == 0 {
				reqs[i] = InvalidID // padded dummies pass through
			} else {
				reqs[i] = uint64(rng.Intn(12))
			}
		}
		a := Union(reqs)
		b := UnionSorted(reqs)
		if a.Size != b.Size {
			t.Fatalf("trial %d: sizes %d vs %d (reqs %v)", trial, a.Size, b.Size, reqs)
		}
		setA := map[uint64]bool{}
		for _, id := range a.IDs[:a.Size] {
			setA[id] = true
		}
		for i, id := range b.IDs[:b.Size] {
			if !setA[id] {
				t.Fatalf("trial %d: sorted union has extra id %d", trial, id)
			}
			if i > 0 && b.IDs[i-1] >= id {
				t.Fatalf("trial %d: sorted union not ascending: %v", trial, b.IDs[:b.Size])
			}
		}
		for i := b.Size; i < len(b.IDs); i++ {
			if b.IDs[i] != InvalidID {
				t.Fatalf("trial %d: tail not InvalidID", trial)
			}
		}
	}
}

func TestUnionSortedCostBeatsQuadraticAtScale(t *testing.T) {
	// At the paper's 16K chunk the sorting network is far cheaper than
	// the quadratic scan.
	quad := UnionScanCost(16384)
	sorted := UnionSortedScanCost(16384)
	if sorted*10 > quad {
		t.Errorf("sorted cost %d not ≪ quadratic %d", sorted, quad)
	}
	// Tiny inputs behave.
	if UnionSortedScanCost(0) != 0 || UnionSortedScanCost(1) != 1 {
		t.Error("degenerate costs wrong")
	}
}

func BenchmarkUnionSorted2K(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	reqs := make([]uint64, 2048)
	for i := range reqs {
		reqs[i] = uint64(rng.Intn(256))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnionSorted(reqs)
	}
}
