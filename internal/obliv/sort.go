package obliv

// Bitonic sort: an oblivious sorting network whose compare-exchange
// sequence depends only on the (public) input length. FEDORA uses
// oblivious sorting when the eviction logic must reorder stash blocks by
// secret keys without revealing the permutation; we also use it to pick
// "the first k" union entries without leaking which slots were real.
//
// The network sorts any length n by operating over the next power of two
// and treating out-of-range positions as +inf keys (compare-exchanges
// touching them are executed against a dummy element so the touched
// addresses remain a function of n alone).

// KV is a sortable key/value pair. Sorting is by Key ascending; Val rides
// along (e.g., a block index or request payload pointer index).
type KV struct {
	Key uint64
	Val uint64
}

// BitonicSortKV sorts kvs in place by Key ascending using a bitonic
// network. The sequence of (i, j) compare-exchange index pairs depends
// only on len(kvs). Non-power-of-two lengths are handled by padding to
// the next power of two with max-key sentinels, which sort to the tail
// and are discarded; the padding size is a function of the public length.
func BitonicSortKV(kvs []KV) {
	n := len(kvs)
	if n < 2 {
		return
	}
	pow2 := 1
	for pow2 < n {
		pow2 <<= 1
	}
	buf := make([]KV, pow2)
	copy(buf, kvs)
	for i := n; i < pow2; i++ {
		buf[i] = KV{Key: ^uint64(0), Val: ^uint64(0)}
	}
	for size := 2; size <= pow2; size <<= 1 {
		for stride := size >> 1; stride > 0; stride >>= 1 {
			for i := 0; i < pow2; i++ {
				j := i ^ stride
				if j <= i {
					continue
				}
				a, b := &buf[i], &buf[j]
				var swap uint64
				if i&size == 0 { // ascending region
					swap = Lt64(b.Key, a.Key)
				} else { // descending region
					swap = Lt64(a.Key, b.Key)
				}
				CondSwap64(swap, &a.Key, &b.Key)
				CondSwap64(swap, &a.Val, &b.Val)
			}
		}
	}
	copy(kvs, buf[:n])
}

// CompactIDs obliviously moves all real entries (!= InvalidID) of ids to
// the front, preserving their relative order, and returns the count of
// real entries. It is implemented by a stable bitonic sort on the key
// (isDummy, originalIndex).
func CompactIDs(ids []uint64) int {
	n := len(ids)
	kvs := make([]KV, n)
	for i, id := range ids {
		dummyBit := Eq64(id, InvalidID)
		// Key layout: [dummy bit | original index]; real entries sort
		// first and keep order.
		kvs[i] = KV{Key: dummyBit<<63 | uint64(i), Val: id}
	}
	BitonicSortKV(kvs)
	var count uint64
	for i := range kvs {
		ids[i] = kvs[i].Val
		count += Neq64(kvs[i].Val, InvalidID)
	}
	return int(count)
}
