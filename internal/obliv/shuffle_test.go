package obliv

import (
	"math/rand"
	"sort"
	"testing"
)

func TestShufflePreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kvs := make([]KV, 37)
	for i := range kvs {
		kvs[i] = KV{Key: uint64(i), Val: uint64(i * 10)}
	}
	Shuffle(kvs, rng)
	seen := map[uint64]bool{}
	for _, kv := range kvs {
		if kv.Val != kv.Key*10 {
			t.Fatalf("key/val pairing broken: %+v", kv)
		}
		if seen[kv.Key] {
			t.Fatalf("duplicate key %d", kv.Key)
		}
		seen[kv.Key] = true
	}
	if len(seen) != 37 {
		t.Errorf("lost elements: %d", len(seen))
	}
}

func TestShuffleActuallyPermutes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ids := make([]uint64, 100)
	for i := range ids {
		ids[i] = uint64(i)
	}
	ShuffleIDs(ids, rng)
	inPlace := 0
	for i, id := range ids {
		if id == uint64(i) {
			inPlace++
		}
	}
	// Expected fixed points of a random permutation ≈ 1.
	if inPlace > 10 {
		t.Errorf("%d/100 fixed points — not shuffled", inPlace)
	}
}

func TestShuffleUniformish(t *testing.T) {
	// Element 0's final position should be ~uniform across trials.
	counts := make([]int, 4)
	for trial := 0; trial < 4000; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		ids := []uint64{0, 1, 2, 3}
		ShuffleIDs(ids, rng)
		for pos, id := range ids {
			if id == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		if c < 800 || c > 1200 { // expect ~1000 ± 5σ(≈150)
			t.Errorf("position %d count %d, want ≈1000", pos, c)
		}
	}
}

func TestMerge(t *testing.T) {
	a := []KV{{1, 10}, {4, 40}, {9, 90}}
	b := []KV{{2, 20}, {3, 30}, {11, 110}}
	out := Merge(a, b)
	if len(out) != 6 {
		t.Fatalf("len = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Key > out[i].Key {
			t.Fatalf("not sorted: %v", out)
		}
	}
	if out[0].Val != 10 || out[5].Val != 110 {
		t.Errorf("values wrong: %v", out)
	}
}

func TestTopK(t *testing.T) {
	kvs := []KV{{5, 0}, {1, 1}, {9, 2}, {3, 3}, {7, 4}}
	top := TopK(kvs, 3)
	var keys []int
	for _, kv := range top {
		keys = append(keys, int(kv.Key))
	}
	sort.Ints(keys)
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 3 || keys[2] != 5 {
		t.Errorf("TopK = %v", top)
	}
	// Input untouched.
	if kvs[0].Key != 5 {
		t.Error("input mutated")
	}
	// Degenerate k.
	if got := TopK(kvs, 99); len(got) != 5 {
		t.Errorf("overlarge k = %v", got)
	}
	if got := TopK(kvs, -1); len(got) != 0 {
		t.Errorf("negative k = %v", got)
	}
}

func TestMaxKTags(t *testing.T) {
	ids := []uint64{100, 200, 300, 400}
	scores := []uint64{7, 2, 9, 5}
	tags := MaxKTags(ids, scores, 2)
	// Winners: index 2 (score 9) and index 0 (score 7).
	want := []uint64{1, 0, 1, 0}
	for i := range want {
		if tags[i] != want[i] {
			t.Errorf("tags = %v, want %v", tags, want)
			break
		}
	}
}

func TestMaxKTagsTieBreaksByIndex(t *testing.T) {
	tags := MaxKTags([]uint64{1, 2, 3}, []uint64{5, 5, 5}, 1)
	if tags[0] != 1 || tags[1] != 0 || tags[2] != 0 {
		t.Errorf("tie tags = %v, want first index wins", tags)
	}
}

func TestMaxKTagsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	MaxKTags([]uint64{1}, []uint64{1, 2}, 1)
}
