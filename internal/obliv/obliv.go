// Package obliv provides data-oblivious (branch-free, constant-time)
// building blocks used inside the trusted FEDORA controller.
//
// The FEDORA paper (Sec 4.1, 5.1) requires that all controller logic whose
// control flow or memory addresses could depend on secret user data be
// written in a constant-time, data-independent style, mirroring the
// authors' "best-effort constant-time" C++ prototype. This package is the
// single place where such primitives live, so the rest of the code base
// can state its intent by calling, e.g., obliv.Select64 rather than using
// an if-statement on a secret.
//
// Conventions:
//   - A "choice" is a uint64 that is exactly 0 or 1. Helpers that produce
//     choices (Eq64, Lt64, ...) guarantee this; helpers that consume them
//     (Select64, CondCopy, ...) require it.
//   - Nothing in this package branches on, or indexes memory by, any of
//     its secret arguments. Loop bounds depend only on public lengths.
//
// Paper mapping: the Sec 4.2 oblivious union (the Θ(K²) linear-scan
// variant the paper prototypes, plus the O(K·log²K) sorting-network
// alternative) is the main consumer; the element-wise primitives
// implement the Sec 4.1/5.1 constant-time discipline they build on.
package obliv

// mask returns an all-ones word when choice==1 and zero when choice==0.
func mask(choice uint64) uint64 {
	return -choice
}

// Select64 returns a if choice==1 and b if choice==0, without branching.
func Select64(choice, a, b uint64) uint64 {
	m := mask(choice)
	return (a & m) | (b &^ m)
}

// SelectInt returns a if choice==1 and b if choice==0, without branching.
func SelectInt(choice uint64, a, b int) int {
	return int(Select64(choice, uint64(a), uint64(b)))
}

// Eq64 returns 1 if a == b and 0 otherwise, without branching.
func Eq64(a, b uint64) uint64 {
	x := a ^ b
	// x == 0  <=>  both x and -x have the top bit clear.
	return 1 ^ ((x | -x) >> 63)
}

// Neq64 returns 1 if a != b and 0 otherwise.
func Neq64(a, b uint64) uint64 {
	return 1 ^ Eq64(a, b)
}

// Lt64 returns 1 if a < b (unsigned) and 0 otherwise, without branching.
func Lt64(a, b uint64) uint64 {
	// Standard constant-time unsigned comparison:
	// the borrow out of a-b is the sign of (a^((a^b)|((a-b)^b))).
	return ((a ^ ((a ^ b) | ((a - b) ^ b))) >> 63)
}

// Ge64 returns 1 if a >= b (unsigned) and 0 otherwise.
func Ge64(a, b uint64) uint64 {
	return 1 ^ Lt64(a, b)
}

// And combines two choices without branching.
func And(a, b uint64) uint64 { return a & b }

// Or combines two choices without branching.
func Or(a, b uint64) uint64 { return a | b }

// Not negates a choice without branching.
func Not(a uint64) uint64 { return a ^ 1 }

// CondAssign64 sets *dst = src when choice==1 and leaves *dst unchanged
// when choice==0.
func CondAssign64(choice uint64, dst *uint64, src uint64) {
	*dst = Select64(choice, src, *dst)
}

// CondSwap64 exchanges *a and *b when choice==1.
func CondSwap64(choice uint64, a, b *uint64) {
	m := mask(choice)
	d := (*a ^ *b) & m
	*a ^= d
	*b ^= d
}

// CondCopy copies src into dst when choice==1 and performs a same-shaped
// pass over both slices (reading src, rewriting dst with its own value)
// when choice==0. len(dst) must equal len(src); lengths are public.
func CondCopy(choice uint64, dst, src []byte) {
	if len(dst) != len(src) {
		panic("obliv: CondCopy length mismatch")
	}
	m := byte(mask(choice))
	for i := range dst {
		dst[i] = (src[i] & m) | (dst[i] &^ m)
	}
}

// CondSwapBytes exchanges the contents of a and b when choice==1,
// touching every byte of both slices regardless of choice.
func CondSwapBytes(choice uint64, a, b []byte) {
	if len(a) != len(b) {
		panic("obliv: CondSwapBytes length mismatch")
	}
	m := byte(mask(choice))
	for i := range a {
		d := (a[i] ^ b[i]) & m
		a[i] ^= d
		b[i] ^= d
	}
}

// CondCopy64s copies src into dst word-wise when choice==1; same-shaped
// pass otherwise.
func CondCopy64s(choice uint64, dst, src []uint64) {
	if len(dst) != len(src) {
		panic("obliv: CondCopy64s length mismatch")
	}
	m := mask(choice)
	for i := range dst {
		dst[i] = (src[i] & m) | (dst[i] &^ m)
	}
}

// ScanGather reads arr[idx] by linearly scanning the whole slice,
// accumulating the match without branching. The memory access pattern is
// independent of idx: every element is read exactly once in order.
func ScanGather(arr []uint64, idx uint64) uint64 {
	var out uint64
	for i := range arr {
		hit := Eq64(uint64(i), idx)
		out = Select64(hit, arr[i], out)
	}
	return out
}

// ScanScatter writes val into arr[idx] by linearly scanning the whole
// slice, rewriting every element (with itself or with val) so that the
// write pattern is independent of idx.
func ScanScatter(arr []uint64, idx, val uint64) {
	for i := range arr {
		hit := Eq64(uint64(i), idx)
		arr[i] = Select64(hit, val, arr[i])
	}
}

// ScanGatherBytes copies the blockSize-byte record at index idx of the
// packed array arr (len(arr) = n*blockSize) into dst using a full linear
// scan. dst must have length blockSize.
func ScanGatherBytes(arr []byte, blockSize int, idx uint64, dst []byte) {
	if len(dst) != blockSize {
		panic("obliv: ScanGatherBytes dst size mismatch")
	}
	n := len(arr) / blockSize
	for i := 0; i < n; i++ {
		hit := Eq64(uint64(i), idx)
		CondCopy(hit, dst, arr[i*blockSize:(i+1)*blockSize])
	}
}

// ScanScatterBytes writes src over the record at index idx of the packed
// array arr using a full linear scan; every record is rewritten.
func ScanScatterBytes(arr []byte, blockSize int, idx uint64, src []byte) {
	if len(src) != blockSize {
		panic("obliv: ScanScatterBytes src size mismatch")
	}
	n := len(arr) / blockSize
	for i := 0; i < n; i++ {
		hit := Eq64(uint64(i), idx)
		CondCopy(hit, arr[i*blockSize:(i+1)*blockSize], src)
	}
}
