package obliv

// This file implements the data-oblivious union of user requests from
// FEDORA step ① (Sec 4.2 of the paper): the controller receives K
// embedding-row requests from the selected clients and must compute the
// set of unique row IDs — and its size k_union — without leaking, through
// its memory access pattern, which requests were duplicates.
//
// The algorithm is the paper's O(K²) linear scan: for each incoming
// request, scan the entire result array once, obliviously recording
// whether the ID is already present and obliviously appending it to the
// (secret) tail position if not. The result array is conservatively sized
// to K entries so overflow is impossible. Every input element causes
// exactly one full pass over the result array, so the access pattern is a
// deterministic function of the public K alone.

// InvalidID is the sentinel stored in unused union slots. Real row IDs
// must be < InvalidID. It doubles as the "dummy request" marker: inputs
// equal to InvalidID are scanned like every other element but never
// inserted, which lets callers pad request lists to a public length.
const InvalidID = ^uint64(0)

// UnionResult is the output of the oblivious union: a K-sized slice whose
// first Size entries (a secret count) are the unique IDs in first-seen
// order and whose remaining entries are InvalidID.
type UnionResult struct {
	// IDs has length equal to the input K. Entries at positions >= Size
	// hold InvalidID. Consumers must take care to only reveal information
	// about IDs/Size through channels covered by the ε-FDP mechanism.
	IDs []uint64
	// Size is k_union, the number of unique real IDs.
	Size int
}

// Union computes the oblivious union of reqs. The access pattern depends
// only on len(reqs). Cost is Θ(K²) slot touches, as in the paper.
func Union(reqs []uint64) UnionResult {
	k := len(reqs)
	out := make([]uint64, k)
	for i := range out {
		out[i] = InvalidID
	}
	var size uint64
	for _, r := range reqs {
		real := Neq64(r, InvalidID)
		var present uint64
		// Pass 1 semantics are fused into one pass: a slot matches either
		// if it already holds r (present) or if it is the current tail
		// slot and r is new. Both conditions are evaluated for every slot.
		for j := range out {
			present |= Eq64(out[j], r)
		}
		insert := And(real, Not(present))
		// Second full pass performs the (possibly dummy) append: slot
		// `size` receives r when insert==1; every slot is rewritten.
		for j := range out {
			hit := And(insert, Eq64(uint64(j), size))
			out[j] = Select64(hit, r, out[j])
		}
		size += insert
	}
	return UnionResult{IDs: out, Size: int(size)}
}

// UnionChunked splits reqs into ceil(K/chunkSize) chunks and unions each
// chunk independently, as the paper does when K is large (16K entries per
// chunk in the evaluation). This reduces the quadratic scan cost from
// Θ(K²) to Θ(K·chunkSize) at the price of (a) duplicates across chunks
// not being merged and (b) the ε-FDP noise being added per chunk
// (parallel composition, Sec 4.2). The final (possibly short) chunk keeps
// its natural size; chunk boundaries are public.
func UnionChunked(reqs []uint64, chunkSize int) []UnionResult {
	if chunkSize <= 0 {
		panic("obliv: UnionChunked chunkSize must be positive")
	}
	var res []UnionResult
	for start := 0; start < len(reqs); start += chunkSize {
		end := start + chunkSize
		if end > len(reqs) {
			end = len(reqs)
		}
		res = append(res, Union(reqs[start:end]))
	}
	return res
}

// UnionScanCost returns the number of slot touches Union performs for K
// requests: 2·K² (two full passes over a K-slot array per request). Used
// by the latency model.
func UnionScanCost(k int) int64 {
	return 2 * int64(k) * int64(k)
}

// UnionChunkedScanCost returns total slot touches for the chunked union.
func UnionChunkedScanCost(k, chunkSize int) int64 {
	if chunkSize <= 0 {
		panic("obliv: chunkSize must be positive")
	}
	var total int64
	for start := 0; start < k; start += chunkSize {
		c := chunkSize
		if start+c > k {
			c = k - start
		}
		total += UnionScanCost(c)
	}
	return total
}

// UnionSorted computes the same union as Union with an O(K·log²K)
// oblivious algorithm instead of the paper's Θ(K²) linear scan: bitonic-
// sort the requests by ID, obliviously mark the first occurrence of each
// run of duplicates, replace the rest with InvalidID, and obliviously
// compact the survivors to the front. The resulting IDs are in ASCENDING
// order (not first-seen order); callers that need arrival order — e.g.
// the SelectFirst policy — must use Union. The access pattern depends
// only on K.
func UnionSorted(reqs []uint64) UnionResult {
	k := len(reqs)
	kvs := make([]KV, k)
	for i, r := range reqs {
		kvs[i] = KV{Key: r, Val: r}
	}
	BitonicSortKV(kvs)
	out := make([]uint64, k)
	var size uint64
	for i := range kvs {
		id := kvs[i].Val
		dup := uint64(0)
		if i > 0 {
			dup = Eq64(id, kvs[i-1].Val)
		}
		real := Neq64(id, InvalidID)
		keep := And(real, Not(dup))
		out[i] = Select64(keep, id, InvalidID)
		size += keep
	}
	CompactIDs(out)
	return UnionResult{IDs: out, Size: int(size)}
}

// UnionSortedScanCost estimates the slot touches of UnionSorted: two
// bitonic networks (sort + compaction) of ~K·log²K compare-exchanges
// each, plus two linear passes.
func UnionSortedScanCost(k int) int64 {
	if k < 2 {
		return int64(k)
	}
	log2 := 0
	for p := 1; p < k; p <<= 1 {
		log2++
	}
	network := int64(k) * int64(log2) * int64(log2+1) / 2
	return 2*network + 2*int64(k)
}
