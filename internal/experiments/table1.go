package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dataset"
	"repro/internal/fdp"
	"repro/internal/fl"
)

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Dataset string
	Mode    string // "pub", "hide priv val", "hide # of priv vals"
	Epsilon float64
	// ReducedPct is accesses saved vs the perfect-privacy ε=0 (k=K) case.
	ReducedPct float64
	// DummyPct / LostPct are relative to the ε=∞ optimal access count.
	DummyPct, LostPct float64
	AUC               float64
}

// Table1Options scales the accuracy study.
type Table1Options struct {
	// Quick trims the datasets and round count for tests/CI.
	Quick bool
	// Rounds of FL per configuration (0 = 150 full / 40 quick).
	Rounds int
	Seed   int64
}

func (o Table1Options) rounds() int {
	if o.Rounds > 0 {
		return o.Rounds
	}
	if o.Quick {
		return 40
	}
	return 150
}

func (o Table1Options) datasets() []*dataset.Dataset {
	ml := dataset.MovieLensConfig()
	tb := dataset.TaobaoConfig()
	if o.Quick {
		ml.NumItems, ml.NumUsers, ml.SamplesPerUser = 400, 150, 40
		tb.NumItems, tb.NumUsers, tb.SamplesPerUser = 500, 150, 30
	}
	return []*dataset.Dataset{dataset.Generate(ml), dataset.Generate(tb)}
}

// RunTable1 executes the accuracy study: for each dataset, the pub
// baseline plus both protection modes at ε ∈ {∞, 1.0, 0.1}.
func RunTable1(o Table1Options) ([]Table1Row, error) {
	var rows []Table1Row
	epsilons := []float64{fdp.EpsilonInfinity, 1.0, 0.1}
	for _, ds := range o.datasets() {
		// pub: no private features.
		res, err := runFL(ds, fdp.EpsilonInfinity, false, false, o)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Dataset: ds.Name, Mode: "pub", Epsilon: math.NaN(),
			ReducedPct: math.NaN(), DummyPct: math.NaN(), LostPct: math.NaN(),
			AUC: res.AUC,
		})
		for _, mode := range []struct {
			name      string
			hideCount bool
		}{
			{"hide priv val", false},
			{"hide # of priv vals", true},
		} {
			for _, eps := range epsilons {
				res, err := runFL(ds, eps, true, mode.hideCount, o)
				if err != nil {
					return nil, err
				}
				rows = append(rows, Table1Row{
					Dataset: ds.Name, Mode: mode.name, Epsilon: eps,
					ReducedPct: 100 * res.ReducedAccesses,
					DummyPct:   100 * res.DummyFrac,
					LostPct:    100 * res.LostFrac,
					AUC:        res.AUC,
				})
			}
		}
	}
	return rows, nil
}

func runFL(ds *dataset.Dataset, eps float64, usePrivate, hideCount bool, o Table1Options) (fl.Result, error) {
	cfg := fl.Config{
		Dataset:              ds,
		Dim:                  8,
		Hidden:               16,
		UsePrivate:           usePrivate,
		Epsilon:              eps,
		HideCount:            hideCount,
		ClientsPerRound:      40,
		MaxFeaturesPerClient: 100,
		LocalLR:              0.1,
		LocalEpochs:          2,
		Seed:                 o.Seed,
	}
	if ds.Name == "movielens" {
		cfg.Dropout = 0.5 // the paper adds p=0.5 dropout for MovieLens
	}
	tr, err := fl.New(cfg)
	if err != nil {
		return fl.Result{}, err
	}
	return tr.Run(o.rounds())
}

// RenderTable1 renders the accuracy table.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — ORAM access reduction and model quality under e-FDP\n")
	tw := newTable(&b, "Dataset", "Mode", "eps", "Reduced", "Dummy", "Lost", "AUC")
	for _, r := range rows {
		pct := func(v float64) string {
			if math.IsNaN(v) {
				return "-"
			}
			return fmt.Sprintf("%.2f%%", v)
		}
		eps := "-"
		if !math.IsNaN(r.Epsilon) {
			eps = epsName(r.Epsilon)
		}
		tw.row(r.Dataset, r.Mode, eps, pct(r.ReducedPct), pct(r.DummyPct), pct(r.LostPct),
			fmt.Sprintf("%.4f", r.AUC))
	}
	tw.flush()
	return b.String()
}
