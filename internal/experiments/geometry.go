package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/fedora"
)

// GeometryRow describes one (scale, backend) ORAM configuration — the
// derived geometry behind the Sec 6.1 setups: tree shape, bucket
// occupancy, eviction period, and the memory amplification the paper
// discusses in Sec 3.2 (1.5–2× for RAW/Ring-style trees, 6–8× for Path
// ORAM).
type GeometryRow struct {
	Scale         string
	Backend       string
	TableBytes    uint64
	ORAMBytes     uint64
	Amplification float64
	EvictPeriod   int // 0 for Path ORAM+
	DRAMBytes     uint64
}

// RunGeometry derives the configurations without running any rounds.
func RunGeometry() ([]GeometryRow, error) {
	var rows []GeometryRow
	for _, sc := range dataset.Scales {
		table := sc.Rows * uint64(sc.EntryBytes)
		for _, be := range []fedora.Backend{fedora.BackendFedora, fedora.BackendPathORAMPlus} {
			ctrl, err := fedora.New(fedora.Config{
				Backend: be,
				NumRows: sc.Rows,
				Dim:     sc.EntryBytes / 4,
				Phantom: true,
				Seed:    1,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, GeometryRow{
				Scale:         sc.Name,
				Backend:       be.String(),
				TableBytes:    table,
				ORAMBytes:     ctrl.MainORAMBytes(),
				Amplification: float64(ctrl.MainORAMBytes()) / float64(table),
				EvictPeriod:   ctrl.MainEvictPeriod(),
				DRAMBytes:     ctrl.DRAMResidentBytes(),
			})
		}
	}
	return rows, nil
}

// RenderGeometry renders the configuration table.
func RenderGeometry(rows []GeometryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ORAM geometry per Sec 6.1 configuration\n")
	tw := newTable(&b, "Scale", "Backend", "Table", "ORAM", "Amplification", "A", "Controller DRAM")
	gb := func(v uint64) string { return fmt.Sprintf("%.2f GB", float64(v)/1e9) }
	for _, r := range rows {
		a := "-"
		if r.EvictPeriod > 0 {
			a = fmt.Sprint(r.EvictPeriod)
		}
		tw.row(r.Scale, r.Backend, gb(r.TableBytes), gb(r.ORAMBytes),
			fmt.Sprintf("%.2fx", r.Amplification), a, gb(r.DRAMBytes))
	}
	tw.flush()
	return b.String()
}
