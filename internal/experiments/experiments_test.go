package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestFig3Renders(t *testing.T) {
	out, err := RenderFig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(a)", "(f)", "P[lost]", "k_union=30"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 output missing %q", want)
		}
	}
}

func TestFig3DeltaAlwaysK(t *testing.T) {
	// Panel (f): delta shape must put all mass at k=K (Strawman 1).
	out, err := RenderFig3()
	if err != nil {
		t.Fatal(err)
	}
	// The (f) block should show P[dummy]=1.000 (all mass above k_union).
	idx := strings.Index(out, "Y=delta")
	if idx < 0 {
		t.Fatal("missing delta panel")
	}
	tail := out[idx:]
	if !strings.Contains(tail, "P[dummy]=1.000") {
		t.Error("delta panel does not put all mass in the dummy region")
	}
}

func quickSweep(t *testing.T) []SweepPoint {
	t.Helper()
	points, err := RunSweep(SweepOptions{Quick: true, Rounds: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func TestSweepShapesMatchPaper(t *testing.T) {
	points := quickSweep(t)
	var pathLife, e0Life, e1KaggleLife, e1TaobaoNumLife float64
	var pathOv, e0Ov, e1Ov float64
	for _, p := range points {
		switch {
		case p.System == SysPathORAMPlus.Name:
			pathLife, pathOv = p.Result.LifetimeMonths(), p.Result.OverheadPct()
		case p.System == SysFedoraEps0.Name:
			e0Life, e0Ov = p.Result.LifetimeMonths(), p.Result.OverheadPct()
		case p.System == SysFedoraEps1.Name && p.Workload == "Kaggle":
			e1KaggleLife, e1Ov = p.Result.LifetimeMonths(), p.Result.OverheadPct()
		case p.System == SysFedoraEps1.Name && strings.Contains(p.Workload, "Taobao (Hide #"):
			e1TaobaoNumLife = p.Result.LifetimeMonths()
		}
	}
	// Fig 7 orderings: PathORAM+ ≪ FEDORA(ε=0) < FEDORA(ε=1); the skewed
	// hide-# Taobao workload gains the most.
	if !(pathLife < e0Life && e0Life < e1KaggleLife) {
		t.Errorf("lifetime ordering broken: path %v, e0 %v, e1 %v",
			pathLife, e0Life, e1KaggleLife)
	}
	if e0Life/pathLife < 10 {
		t.Errorf("FEDORA(e=0) lifetime gain = %.1fx, paper reports tens of x", e0Life/pathLife)
	}
	if e1TaobaoNumLife < 5*e0Life {
		t.Errorf("Taobao hide-# gain over e=0 = %.1fx, paper reports up to 38x", e1TaobaoNumLife/e0Life)
	}
	// Fig 8 orderings: overhead(PathORAM+) > overhead(ε=0) > overhead(ε=1);
	// at 10K updates even PathORAM+ stays below ~5%.
	if !(pathOv > e0Ov && e0Ov > e1Ov) {
		t.Errorf("overhead ordering broken: %v %v %v", pathOv, e0Ov, e1Ov)
	}
	if pathOv > 6 {
		t.Errorf("PathORAM+ overhead at 10K updates = %.1f%%, paper <5%%", pathOv)
	}
}

func TestOverheadGrowsWithUpdates(t *testing.T) {
	w := dataset.PerfWorkloads[1]
	var prev float64
	for _, upd := range []int{10000, 100000} {
		res, err := RunPerf(PerfConfig{
			Scale: dataset.Scales[0], Updates: upd, System: SysPathORAMPlus,
			Workload: w, Rounds: 1, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OverheadPct() <= prev {
			t.Errorf("overhead did not grow: %v at %d updates", res.OverheadPct(), upd)
		}
		prev = res.OverheadPct()
	}
}

func TestRenderFig7And8(t *testing.T) {
	points := quickSweep(t)
	f7 := RenderFig7(points)
	if !strings.Contains(f7, "Lifetime (months)") || !strings.Contains(f7, "PathORAM+") {
		t.Errorf("Fig7 render:\n%s", f7)
	}
	f8 := RenderFig8(points)
	if !strings.Contains(f8, "Overhead %") {
		t.Errorf("Fig8 render:\n%s", f8)
	}
}

func TestFig9FedoraBeatsDRAMAndPathORAMPlusLoses(t *testing.T) {
	rows, err := RunFig9(SweepOptions{Quick: true, Rounds: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var fedora1, pathPlus Fig9Row
	for _, r := range rows {
		if r.System == SysFedoraEps1.Name {
			fedora1 = r
		}
		if r.System == SysPathORAMPlus.Name {
			pathPlus = r
		}
	}
	// FEDORA(ε=1) is far cheaper than the DRAM design on all three axes.
	if fedora1.Rel.HardwareCost > 0.5 || fedora1.Rel.Power > 0.6 || fedora1.Rel.Energy > 0.6 {
		t.Errorf("FEDORA(e=1) relative = %+v, want well below 1", fedora1.Rel)
	}
	// Path ORAM+ wears the SSD out so fast its hardware cost exceeds the
	// DRAM design (the paper's 160–337%% bars).
	if pathPlus.Rel.HardwareCost < 1 {
		t.Errorf("PathORAM+ relative HW cost = %v, want > 1", pathPlus.Rel.HardwareCost)
	}
	out := RenderFig9(rows)
	if !strings.Contains(out, "normalized") {
		t.Error("Fig9 render missing header")
	}
}

func TestFig10ScratchpadHelps(t *testing.T) {
	rows, err := RunFig10(SweepOptions{Quick: true, Rounds: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	r := rows[0]
	if r.Slowdown <= 1.0 {
		t.Errorf("no-scratchpad slowdown = %v, want > 1", r.Slowdown)
	}
	if r.Slowdown > 4 {
		t.Errorf("slowdown = %v, implausibly large (paper ~1.5x)", r.Slowdown)
	}
	out := RenderFig10(rows)
	if !strings.Contains(out, "scratchpad") {
		t.Error("Fig10 render missing header")
	}
}

func TestBucketAblationTradeoff(t *testing.T) {
	rows, err := RunBucketAblation(SweepOptions{Rounds: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sec 6.6: larger buckets extend lifetime but add latency.
	if rows[2].LifetimeMonths <= rows[0].LifetimeMonths {
		t.Errorf("16KB lifetime %v not above 4KB %v", rows[2].LifetimeMonths, rows[0].LifetimeMonths)
	}
	if rows[2].Overhead <= rows[0].Overhead {
		t.Errorf("16KB overhead %v not above 4KB %v", rows[2].Overhead, rows[0].Overhead)
	}
	out := RenderBucketAblation(rows)
	if !strings.Contains(out, "Bucket") {
		t.Error("render missing header")
	}
}

func TestTable1QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy study is slow")
	}
	rows, err := RunTable1(Table1Options{Quick: true, Rounds: 25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Table1Row{}
	for _, r := range rows {
		key := r.Dataset + "|" + r.Mode + "|" + epsName(r.Epsilon)
		byKey[key] = r
	}
	// pub rows exist for both datasets.
	mlPub, ok := byKey["movielens|pub|NaN"]
	if !ok {
		// epsName(NaN) prints "NaN"; fall back to scanning.
		for _, r := range rows {
			if r.Dataset == "movielens" && r.Mode == "pub" {
				mlPub, ok = r, true
			}
		}
	}
	if !ok {
		t.Fatal("missing movielens pub row")
	}
	var mlInf Table1Row
	for _, r := range rows {
		if r.Dataset == "movielens" && r.Mode == "hide priv val" && r.Epsilon > 1e6 {
			mlInf = r
		}
	}
	// Core claim: private features beat pub.
	if mlInf.AUC < mlPub.AUC {
		t.Errorf("movielens: priv AUC %.4f below pub %.4f", mlInf.AUC, mlPub.AUC)
	}
	// Reduced accesses meaningful; hide-# mode reduces much more.
	var mlNumInf Table1Row
	for _, r := range rows {
		if r.Dataset == "movielens" && r.Mode == "hide # of priv vals" && r.Epsilon > 1e6 {
			mlNumInf = r
		}
	}
	if mlNumInf.ReducedPct < mlInf.ReducedPct {
		t.Errorf("hide-# reduced %.1f%% not above hide-val %.1f%%",
			mlNumInf.ReducedPct, mlInf.ReducedPct)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "AUC") {
		t.Error("Table1 render missing header")
	}
}

func TestSweepCSVExport(t *testing.T) {
	points := quickSweep(t)
	var buf strings.Builder
	if err := WriteSweepCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Count(out, "\n")
	if lines != len(points)+1 {
		t.Errorf("csv lines = %d, want %d", lines, len(points)+1)
	}
	if !strings.HasPrefix(out, "scale,updates_per_round") {
		t.Errorf("csv header: %q", out[:40])
	}
}

func TestTable1CSVExport(t *testing.T) {
	rows := []Table1Row{
		{Dataset: "movielens", Mode: "pub", Epsilon: nan(), ReducedPct: nan(), DummyPct: nan(), LostPct: nan(), AUC: 0.58},
		{Dataset: "movielens", Mode: "hide priv val", Epsilon: 1.0, ReducedPct: 52.9, DummyPct: 0.2, LostPct: 0.2, AUC: 0.6},
	}
	var buf strings.Builder
	if err := WriteTable1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "movielens,pub,,,") {
		t.Errorf("pub row not blank-celled:\n%s", out)
	}
	if !strings.Contains(out, "hide priv val,1,52.9") {
		t.Errorf("csv:\n%s", out)
	}
}

func nan() float64 { return math.NaN() }

func TestRunPerfSeeds(t *testing.T) {
	sum, err := RunPerfSeeds(PerfConfig{
		Scale: dataset.Scales[0], Updates: 10000, System: SysFedoraEps1,
		Workload: dataset.PerfWorkloads[1], Rounds: 1, Seed: 5,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Lifetime.N != 3 || sum.Lifetime.Mean <= 0 {
		t.Errorf("lifetime summary = %+v", sum.Lifetime)
	}
	if sum.Overhead.Mean <= 0 {
		t.Errorf("overhead summary = %+v", sum.Overhead)
	}
	// Seeds differ, so some variance should exist (workload draws differ).
	if sum.Lifetime.Min == sum.Lifetime.Max {
		t.Log("warning: identical lifetimes across seeds (acceptable but unusual)")
	}
}

func TestGeomeanLifetime(t *testing.T) {
	points := quickSweep(t)
	g, ok := GeomeanLifetime(points, "Small", 10000, SysFedoraEps1.Name)
	if !ok || g <= 0 {
		t.Errorf("geomean = %v ok=%v", g, ok)
	}
	if _, ok := GeomeanLifetime(points, "Nope", 1, "x"); ok {
		t.Error("missing group resolved")
	}
}

func TestGeometryReport(t *testing.T) {
	rows, err := RunGeometry()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 scales × 2 backends
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper Sec 3.2: RAW/Ring-style amplification 1.5–2×(+page padding),
		// Path ORAM 6–8×(+rounding). Generous sanity windows.
		switch r.Backend {
		case "fedora":
			if r.Amplification < 1.5 || r.Amplification > 5 {
				t.Errorf("%s fedora amplification = %.2f", r.Scale, r.Amplification)
			}
			if r.EvictPeriod <= 0 {
				t.Errorf("%s fedora has no eviction period", r.Scale)
			}
		case "pathoram+":
			if r.Amplification < 5 || r.Amplification > 16 {
				t.Errorf("%s pathoram+ amplification = %.2f", r.Scale, r.Amplification)
			}
			if r.EvictPeriod != 0 {
				t.Errorf("pathoram+ reports eviction period %d", r.EvictPeriod)
			}
		}
		if r.ORAMBytes <= r.TableBytes {
			t.Errorf("%s/%s ORAM smaller than table", r.Scale, r.Backend)
		}
	}
	out := RenderGeometry(rows)
	if !strings.Contains(out, "Amplification") {
		t.Error("render missing header")
	}
}
