package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/metrics"
)

// CSV export (the paper's artifact collects results into CSV files) and
// multi-seed statistics.

// WriteSweepCSV writes the Fig 7/8 sweep in machine-readable form.
func WriteSweepCSV(w io.Writer, points []SweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"scale", "updates_per_round", "system", "workload",
		"lifetime_months", "overhead_seconds", "overhead_pct",
		"ssd_written_per_round_bytes", "k_union", "k_sampled",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			p.Scale,
			strconv.Itoa(p.Updates),
			p.System,
			p.Workload,
			f(p.Result.LifetimeMonths()),
			f(p.Result.Overhead.Seconds()),
			f(p.Result.OverheadPct()),
			strconv.FormatUint(p.Result.SSDWrittenPerRound, 10),
			f(p.Result.KUnion),
			f(p.Result.KSampled),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable1CSV writes the accuracy study in machine-readable form.
func WriteTable1CSV(w io.Writer, rows []Table1Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"dataset", "mode", "epsilon", "reduced_pct", "dummy_pct", "lost_pct", "auc",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		eps := ""
		if !math.IsNaN(r.Epsilon) {
			eps = f(r.Epsilon)
		}
		if err := cw.Write([]string{
			r.Dataset, r.Mode, eps, nanf(r.ReducedPct), nanf(r.DummyPct), nanf(r.LostPct), f(r.AUC),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func nanf(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return f(v)
}

// SeededSummary holds multi-seed statistics of one perf point.
type SeededSummary struct {
	Config   PerfConfig
	Lifetime metrics.Summary
	Overhead metrics.Summary // seconds
}

// RunPerfSeeds repeats a perf point across `seeds` seeds and summarizes
// lifetime and overhead with confidence intervals, so reports can carry
// error bars instead of single draws.
func RunPerfSeeds(cfg PerfConfig, seeds int) (SeededSummary, error) {
	if seeds <= 0 {
		seeds = 3
	}
	var lifetimes, overheads []float64
	for s := 0; s < seeds; s++ {
		c := cfg
		c.Seed = cfg.Seed + int64(s)*7919
		res, err := RunPerf(c)
		if err != nil {
			return SeededSummary{}, fmt.Errorf("seed %d: %w", s, err)
		}
		lifetimes = append(lifetimes, res.LifetimeMonths())
		overheads = append(overheads, res.Overhead.Seconds())
	}
	lsum, err := metrics.Summarize(lifetimes)
	if err != nil {
		return SeededSummary{}, err
	}
	osum, err := metrics.Summarize(overheads)
	if err != nil {
		return SeededSummary{}, err
	}
	return SeededSummary{Config: cfg, Lifetime: lsum, Overhead: osum}, nil
}

// GeomeanLifetime computes the per-(scale, updates, system) geometric
// mean over workloads — the paper's "Geomean" bars in Figs 7/8.
func GeomeanLifetime(points []SweepPoint, scale string, updates int, system string) (float64, bool) {
	var vals []float64
	for _, p := range points {
		if p.Scale == scale && p.Updates == updates && p.System == system {
			vals = append(vals, p.Result.LifetimeMonths())
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	g, err := metrics.GeoMean(vals)
	if err != nil {
		return 0, false
	}
	return g, true
}
