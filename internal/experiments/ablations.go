package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/fdp"
	"repro/internal/fedora"
	"repro/internal/fl"
	"repro/internal/raworam"
	"repro/internal/recmodel"
	"repro/internal/sqrtoram"
)

// This file holds the design-choice ablations beyond the paper's
// figures: the eviction period A (Sec 4.4 Optimization 3), the union
// chunk size (Sec 4.2), and the ε-FDP shape Y (Sec 3.3 Observation 3).

// EvictPeriodRow is one point of the A sweep.
type EvictPeriodRow struct {
	A              int
	LifetimeMonths float64
	Overhead       time.Duration
	EOPerRound     float64
}

// RunEvictPeriodAblation sweeps the eviction period A on the Small/10K
// FEDORA(ε=0) point. Larger A means fewer EO accesses — longer SSD life —
// at slightly higher DRAM cost per eviction (bigger stash scans).
func RunEvictPeriodAblation(o SweepOptions) ([]EvictPeriodRow, error) {
	var rows []EvictPeriodRow
	for _, a := range []int{5, 20, 40, 74, 92} {
		sc := dataset.Scales[0]
		clients := 100
		ctrl, err := fedora.New(fedora.Config{
			Backend:              fedora.BackendFedora,
			NumRows:              sc.Rows,
			Dim:                  sc.EntryBytes / 4,
			Epsilon:              0,
			EvictPeriod:          a,
			MaxClientsPerRound:   clients,
			MaxFeaturesPerClient: 100,
			Seed:                 o.Seed,
			Phantom:              true,
			HasScratchpad:        true,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(o.Seed + 5))
		w := dataset.PerfWorkloads[1]
		rounds := o.Rounds
		if rounds == 0 {
			rounds = 2
		}
		var overhead time.Duration
		for r := 0; r < rounds; r++ {
			reqs := w.GenRound(sc.Rows, clients, 100, rng)
			rd, err := ctrl.BeginRound(reqs)
			if err != nil {
				return nil, err
			}
			st, err := rd.Finish()
			if err != nil {
				return nil, err
			}
			overhead += st.Total()
		}
		overhead /= time.Duration(rounds)
		ssd := ctrl.SSDDevice().Stats()
		written := ssd.BytesWritten / uint64(rounds)
		res := PerfResult{
			PerfConfig:         PerfConfig{Updates: 10000},
			MainORAMBytes:      ctrl.MainORAMBytes(),
			SSDWrittenPerRound: written,
			Overhead:           overhead,
		}
		rows = append(rows, EvictPeriodRow{
			A:              ctrl.MainEvictPeriod(),
			LifetimeMonths: res.LifetimeMonths(),
			Overhead:       overhead,
		})
	}
	return rows, nil
}

// RenderEvictPeriodAblation renders the A sweep.
func RenderEvictPeriodAblation(rows []EvictPeriodRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — eviction period A (Small table, 10K updates, FEDORA e=0)\n")
	tw := newTable(&b, "A", "Lifetime (months)", "Overhead")
	for _, r := range rows {
		tw.row(fmt.Sprint(r.A), fmt.Sprintf("%.2f", r.LifetimeMonths), fmtDuration(r.Overhead))
	}
	tw.flush()
	return b.String()
}

// ChunkRow is one point of the union chunk-size sweep.
type ChunkRow struct {
	ChunkSize     int
	UnionTime     time.Duration
	CrossChunkDup int
	Lost          int
	Chunks        int
}

// RunChunkAblation sweeps the union chunk size at K = 100K (Sec 4.2:
// smaller chunks cut the quadratic scan but duplicate entries across
// chunks and accumulate per-chunk mechanism noise).
func RunChunkAblation(o SweepOptions) ([]ChunkRow, error) {
	var rows []ChunkRow
	for _, chunk := range []int{2048, 8192, 16384, 65536} {
		sc := dataset.Scales[0]
		clients := 1000
		ctrl, err := fedora.New(fedora.Config{
			Backend:              fedora.BackendFedora,
			NumRows:              sc.Rows,
			Dim:                  sc.EntryBytes / 4,
			Epsilon:              1,
			ChunkSize:            chunk,
			MaxClientsPerRound:   clients,
			MaxFeaturesPerClient: 100,
			Seed:                 o.Seed,
			Phantom:              true,
			HasScratchpad:        true,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(o.Seed + 9))
		w := dataset.PerfWorkloads[1]
		reqs := w.GenRound(sc.Rows, clients, 100, rng)
		rd, err := ctrl.BeginRound(reqs)
		if err != nil {
			return nil, err
		}
		st, err := rd.Finish()
		if err != nil {
			return nil, err
		}
		rows = append(rows, ChunkRow{
			ChunkSize:     chunk,
			UnionTime:     st.UnionTime,
			CrossChunkDup: st.CrossChunkDup,
			Lost:          st.Lost,
			Chunks:        st.Chunks,
		})
	}
	return rows, nil
}

// RenderChunkAblation renders the chunk sweep.
func RenderChunkAblation(rows []ChunkRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — union chunk size (Small table, 100K updates, FEDORA e=1)\n")
	tw := newTable(&b, "Chunk", "Chunks", "Union time", "Cross-chunk dups", "Lost entries")
	for _, r := range rows {
		tw.row(fmt.Sprint(r.ChunkSize), fmt.Sprint(r.Chunks), fmtDuration(r.UnionTime),
			fmt.Sprint(r.CrossChunkDup), fmt.Sprint(r.Lost))
	}
	tw.flush()
	return b.String()
}

// ShapeRow is one point of the Y-shape sweep.
type ShapeRow struct {
	Shape    string
	Epsilon  float64
	DummyPct float64
	LostPct  float64
}

// RunShapeAblation contrasts Y shapes at fixed ε on a real request
// stream (Sec 3.3 Observation 3: Y trades performance for accuracy).
func RunShapeAblation(o SweepOptions) ([]ShapeRow, error) {
	shapes := []fdp.Shape{fdp.Uniform{}, fdp.Square{LoFrac: 0.25}, fdp.Pow{Exp: 5}, fdp.Delta{}}
	var rows []ShapeRow
	// At chunk scale (K ≈ 10⁴) the shape only matters when the Eq. 3
	// distribution is wide, i.e. at small ε (Fig 3 uses K = 100, where
	// ε ≈ 0.5 gives the same relative width).
	const eps = 0.002
	for _, sh := range shapes {
		sc := dataset.Scales[0]
		clients := 100
		ctrl, err := fedora.New(fedora.Config{
			Backend:              fedora.BackendFedora,
			NumRows:              sc.Rows,
			Dim:                  sc.EntryBytes / 4,
			Epsilon:              eps,
			Shape:                sh,
			MaxClientsPerRound:   clients,
			MaxFeaturesPerClient: 100,
			Seed:                 o.Seed,
			Phantom:              true,
			HasScratchpad:        true,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(o.Seed + 13))
		w := dataset.PerfWorkloads[1]
		var dummy, lost, union int
		rounds := 5
		for r := 0; r < rounds; r++ {
			reqs := w.GenRound(sc.Rows, clients, 100, rng)
			rd, err := ctrl.BeginRound(reqs)
			if err != nil {
				return nil, err
			}
			st, err := rd.Finish()
			if err != nil {
				return nil, err
			}
			dummy += st.Dummy
			lost += st.Lost
			union += st.KUnion
		}
		rows = append(rows, ShapeRow{
			Shape:    sh.Name(),
			Epsilon:  eps,
			DummyPct: 100 * float64(dummy) / float64(union),
			LostPct:  100 * float64(lost) / float64(union),
		})
	}
	return rows, nil
}

// RenderShapeAblation renders the shape sweep.
func RenderShapeAblation(rows []ShapeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — e-FDP shape Y at e=%.3f (Small table, 10K updates)\n", rows[0].Epsilon)
	tw := newTable(&b, "Shape", "Dummy", "Lost")
	for _, r := range rows {
		tw.row(r.Shape, fmt.Sprintf("%.2f%%", r.DummyPct), fmt.Sprintf("%.2f%%", r.LostPct))
	}
	tw.flush()
	return b.String()
}

// ScheduleRow is one point of the Optimization 1 ablation.
type ScheduleRow struct {
	Schedule        string
	SSDWrites       uint64
	SSDBytesWritten uint64
	LifetimeMonths  float64
}

// RunScheduleAblation quantifies FEDORA's Optimization 1 (the
// FL-friendly AO/EO split, Sec 4.4) by running identical per-round work
// — k fetches plus k write-backs on the Small table — through the
// FL-friendly schedule and through vanilla RAW ORAM semantics (every
// logical access = AO + scheduled EO).
func RunScheduleAblation(o SweepOptions) ([]ScheduleRow, error) {
	const k = 5000
	sc := dataset.Scales[0]
	run := func(vanilla bool) (ScheduleRow, error) {
		ssd := device.NewSim(device.PM9A1SSD, 1<<62)
		dram := device.NewDRAM(1 << 62)
		ram, err := raworam.New(raworam.Config{
			NumBlocks: sc.Rows, BlockSize: sc.EntryBytes,
			Seed: o.Seed, Phantom: true, HasScratchpad: true,
		}, ssd, dram)
		if err != nil {
			return ScheduleRow{}, err
		}
		rng := rand.New(rand.NewSource(o.Seed + 31))
		if vanilla {
			for i := 0; i < 2*k; i++ {
				if _, _, err := ram.VanillaAccess(rng.Uint64()%sc.Rows, nil); err != nil {
					return ScheduleRow{}, err
				}
			}
		} else {
			for i := 0; i < k; i++ {
				if _, _, err := ram.AOAccess(rng.Uint64() % sc.Rows); err != nil {
					return ScheduleRow{}, err
				}
			}
			for i := 0; i < k; i++ {
				if _, err := ram.WriteBack(rng.Uint64()%sc.Rows, nil); err != nil {
					return ScheduleRow{}, err
				}
			}
		}
		st := ssd.Stats()
		name := "fl-friendly (Opt 1)"
		if vanilla {
			name = "vanilla RAW ORAM"
		}
		life := costmodel.SSDLifetime(ram.RequiredBytes(), st.BytesWritten, FLRoundBaseline)
		return ScheduleRow{
			Schedule:        name,
			SSDWrites:       st.Writes,
			SSDBytesWritten: st.BytesWritten,
			LifetimeMonths:  costmodel.Months(life),
		}, nil
	}
	fl, err := run(false)
	if err != nil {
		return nil, err
	}
	vn, err := run(true)
	if err != nil {
		return nil, err
	}
	return []ScheduleRow{fl, vn}, nil
}

// RenderScheduleAblation renders the Optimization 1 comparison.
func RenderScheduleAblation(rows []ScheduleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — FL-friendly AO/EO schedule vs vanilla RAW ORAM (Opt 1, Small table, 5K fetches + 5K write-backs)\n")
	tw := newTable(&b, "Schedule", "SSD writes", "Bytes written", "Lifetime (months)")
	for _, r := range rows {
		tw.row(r.Schedule, fmt.Sprint(r.SSDWrites),
			fmt.Sprintf("%.1f MB", float64(r.SSDBytesWritten)/1e6),
			fmt.Sprintf("%.2f", r.LifetimeMonths))
	}
	tw.flush()
	return b.String()
}

// PoolingRow is one model-architecture ablation point.
type PoolingRow struct {
	Pooling string
	AUC     float64
}

// RunPoolingAblation contrasts mean pooling (DLRM-style) with target-
// aware attention pooling (the "Transformer-like" variant of Sec 2.1) on
// the MovieLens-like accuracy task, everything else fixed.
func RunPoolingAblation(o SweepOptions) ([]PoolingRow, error) {
	cfg := dataset.MovieLensConfig()
	cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 400, 150, 40
	ds := dataset.Generate(cfg)
	var rows []PoolingRow
	for _, pooling := range []recmodel.Pooling{recmodel.PoolMean, recmodel.PoolAttention} {
		tr, err := fl.New(fl.Config{
			Dataset: ds, Dim: 8, Hidden: 16, UsePrivate: true,
			Epsilon: fdp.EpsilonInfinity, Seed: o.Seed,
			ClientsPerRound: 40, LocalLR: 0.1, LocalEpochs: 2,
			Pooling: pooling,
		})
		if err != nil {
			return nil, err
		}
		rounds := 60
		if o.Quick {
			rounds = 20
		}
		res, err := tr.Run(rounds)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PoolingRow{Pooling: pooling.String(), AUC: res.AUC})
	}
	return rows, nil
}

// RenderPoolingAblation renders the architecture comparison.
func RenderPoolingAblation(rows []PoolingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — history pooling (MovieLens-like, eps=inf)\n")
	tw := newTable(&b, "Pooling", "AUC")
	for _, r := range rows {
		tw.row(r.Pooling, fmt.Sprintf("%.4f", r.AUC))
	}
	tw.flush()
	return b.String()
}

// FamilyRow compares ORAM families on identical per-round work.
type FamilyRow struct {
	Family          string
	SSDBytesWritten uint64
	LifetimeMonths  float64
}

// RunFamilyAblation reproduces the Sec 7 argument ("[the shuffling
// family] incurs frequent and large writes to storage, making them
// unsuitable for FL") in numbers: k reads + k write-backs on a 1M-row
// table through FEDORA's RAW ORAM vs a square-root (shuffling) ORAM.
func RunFamilyAblation(o SweepOptions) ([]FamilyRow, error) {
	const numRows, entryBytes, k = 1_000_000, 64, 2000
	var rows []FamilyRow

	// FEDORA's tree ORAM.
	{
		ssd := device.NewSim(device.PM9A1SSD, 1<<62)
		dram := device.NewDRAM(1 << 62)
		ram, err := raworam.New(raworam.Config{
			NumBlocks: numRows, BlockSize: entryBytes,
			Seed: o.Seed, Phantom: true, HasScratchpad: true,
		}, ssd, dram)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(o.Seed + 41))
		for i := 0; i < k; i++ {
			if _, _, err := ram.AOAccess(rng.Uint64() % numRows); err != nil {
				return nil, err
			}
		}
		for i := 0; i < k; i++ {
			if _, err := ram.WriteBack(rng.Uint64()%numRows, nil); err != nil {
				return nil, err
			}
		}
		written := ssd.Stats().BytesWritten
		life := costmodel.SSDLifetime(ram.RequiredBytes(), written, FLRoundBaseline)
		rows = append(rows, FamilyRow{
			Family:          "tree (FEDORA RAW ORAM)",
			SSDBytesWritten: written,
			LifetimeMonths:  costmodel.Months(life),
		})
	}

	// The shuffling family.
	{
		ssd := device.NewSim(device.PM9A1SSD, 1<<62)
		sq, err := sqrtoram.New(sqrtoram.Config{
			NumBlocks: numRows, BlockSize: entryBytes,
			Seed: o.Seed, Phantom: true,
		}, ssd)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(o.Seed + 41))
		for i := 0; i < 2*k; i++ {
			if _, _, err := sq.Read(rng.Uint64() % numRows); err != nil {
				return nil, err
			}
		}
		written := ssd.Stats().BytesWritten
		life := costmodel.SSDLifetime(sq.RequiredBytes(), written, FLRoundBaseline)
		rows = append(rows, FamilyRow{
			Family:          "shuffling (square-root ORAM)",
			SSDBytesWritten: written,
			LifetimeMonths:  costmodel.Months(life),
		})
	}
	return rows, nil
}

// RenderFamilyAblation renders the ORAM-family comparison.
func RenderFamilyAblation(rows []FamilyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — ORAM family (1M-row table, 2K fetches + 2K write-backs; Sec 7's argument)\n")
	tw := newTable(&b, "Family", "SSD bytes written", "Lifetime (months)")
	for _, r := range rows {
		tw.row(r.Family, fmt.Sprintf("%.1f MB", float64(r.SSDBytesWritten)/1e6),
			fmt.Sprintf("%.2f", r.LifetimeMonths))
	}
	tw.flush()
	return b.String()
}
