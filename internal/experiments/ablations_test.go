package experiments

import (
	"strings"
	"testing"
)

func TestEvictPeriodAblation(t *testing.T) {
	rows, err := RunEvictPeriodAblation(SweepOptions{Rounds: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger A → fewer EO accesses → longer lifetime, monotonically.
	for i := 1; i < len(rows); i++ {
		if rows[i].A <= rows[i-1].A {
			t.Fatalf("A not increasing: %v", rows)
		}
		if rows[i].LifetimeMonths <= rows[i-1].LifetimeMonths {
			t.Errorf("lifetime not increasing with A: A=%d %.1f vs A=%d %.1f",
				rows[i].A, rows[i].LifetimeMonths, rows[i-1].A, rows[i-1].LifetimeMonths)
		}
	}
	// The span should be substantial (the paper moves A from 5 to 92 and
	// cuts EO accesses to 1.1%).
	if rows[len(rows)-1].LifetimeMonths < 5*rows[0].LifetimeMonths {
		t.Errorf("A sweep gain only %.1fx", rows[len(rows)-1].LifetimeMonths/rows[0].LifetimeMonths)
	}
	out := RenderEvictPeriodAblation(rows)
	if !strings.Contains(out, "eviction period") {
		t.Error("render missing header")
	}
}

func TestChunkAblation(t *testing.T) {
	rows, err := RunChunkAblation(SweepOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Smaller chunks: cheaper union, more chunks, more cross-chunk dups.
	first, last := rows[0], rows[len(rows)-1]
	if first.ChunkSize >= last.ChunkSize {
		t.Fatal("rows not ordered by chunk size")
	}
	if first.UnionTime >= last.UnionTime {
		t.Errorf("union time not increasing with chunk size: %v vs %v",
			first.UnionTime, last.UnionTime)
	}
	if first.CrossChunkDup <= last.CrossChunkDup {
		t.Errorf("cross-chunk dups not decreasing with chunk size: %d vs %d",
			first.CrossChunkDup, last.CrossChunkDup)
	}
	if first.Chunks <= last.Chunks {
		t.Errorf("chunk count not decreasing: %d vs %d", first.Chunks, last.Chunks)
	}
	out := RenderChunkAblation(rows)
	if !strings.Contains(out, "chunk") {
		t.Error("render missing header")
	}
}

func TestShapeAblation(t *testing.T) {
	rows, err := RunShapeAblation(SweepOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ShapeRow{}
	for _, r := range rows {
		byName[r.Shape] = r
	}
	uni, pow, delta := byName["uniform"], byName["pow(5)"], byName["delta"]
	// Observation 3: pow trades lost for dummy relative to uniform.
	if !(pow.LostPct < uni.LostPct) {
		t.Errorf("pow lost %.2f%% not below uniform %.2f%%", pow.LostPct, uni.LostPct)
	}
	if !(pow.DummyPct > uni.DummyPct) {
		t.Errorf("pow dummy %.2f%% not above uniform %.2f%%", pow.DummyPct, uni.DummyPct)
	}
	// Observation 4: delta never loses anything (k = K always).
	if delta.LostPct != 0 {
		t.Errorf("delta lost %.2f%%, want 0", delta.LostPct)
	}
	out := RenderShapeAblation(rows)
	if !strings.Contains(out, "Shape") {
		t.Error("render missing header")
	}
}

func TestScheduleAblation(t *testing.T) {
	rows, err := RunScheduleAblation(SweepOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	fl, vn := rows[0], rows[1]
	// Optimization 1 halves the AO count and with it the EO-driven writes.
	if vn.SSDBytesWritten < 15*fl.SSDBytesWritten/10 {
		t.Errorf("vanilla wrote %d vs fl-friendly %d, want ≥1.5x", vn.SSDBytesWritten, fl.SSDBytesWritten)
	}
	if fl.LifetimeMonths <= vn.LifetimeMonths {
		t.Errorf("fl-friendly lifetime %.1f not above vanilla %.1f", fl.LifetimeMonths, vn.LifetimeMonths)
	}
	out := RenderScheduleAblation(rows)
	if !strings.Contains(out, "vanilla") {
		t.Error("render missing rows")
	}
}

func TestPoolingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("training ablation is slow")
	}
	rows, err := RunPoolingAblation(SweepOptions{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AUC < 0.5 {
			t.Errorf("%s AUC = %v, below chance", r.Pooling, r.AUC)
		}
	}
	out := RenderPoolingAblation(rows)
	if !strings.Contains(out, "attention") {
		t.Error("render missing rows")
	}
}

func TestFamilyAblation(t *testing.T) {
	rows, err := RunFamilyAblation(SweepOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	tree, shuffle := rows[0], rows[1]
	// Sec 7's claim, quantified: the shuffling family writes orders of
	// magnitude more for the same work.
	if shuffle.SSDBytesWritten < 20*tree.SSDBytesWritten {
		t.Errorf("shuffling wrote %d vs tree %d — want ≥20x", shuffle.SSDBytesWritten, tree.SSDBytesWritten)
	}
	if shuffle.LifetimeMonths >= tree.LifetimeMonths {
		t.Errorf("shuffling lifetime %.2f not below tree %.2f", shuffle.LifetimeMonths, tree.LifetimeMonths)
	}
	out := RenderFamilyAblation(rows)
	if !strings.Contains(out, "square-root") {
		t.Error("render missing rows")
	}
}
