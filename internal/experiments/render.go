package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// table is a small helper around tabwriter for aligned report tables.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer, headers ...string) *table {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(headers, "\t"))
	sep := make([]string, len(headers))
	for i, h := range headers {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	return &table{w: tw}
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.w, strings.Join(cells, "\t"))
}

func (t *table) flush() { t.w.Flush() }
