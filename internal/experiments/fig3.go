package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fdp"
)

// Fig3Config is one panel of the paper's Figure 3: a (ε, Y) pair whose
// Eq. 3 PDF is plotted for k_union = 30, K = 100.
type Fig3Config struct {
	Label   string
	Epsilon float64
	Shape   fdp.Shape
}

// Fig3Panels are the six panels of Figure 3.
var Fig3Panels = []Fig3Config{
	{"(a) eps=99999, Y=uniform", 99999, fdp.Uniform{}},
	{"(b) eps=0.5,   Y=square", 0.5, fdp.Square{LoFrac: 0.25}},
	{"(c) eps=3.0,   Y=uniform", 3.0, fdp.Uniform{}},
	{"(d) eps=0.5,   Y=pow", 0.5, fdp.Pow{Exp: 5}},
	{"(e) eps=1.0,   Y=uniform", 1.0, fdp.Uniform{}},
	{"(f) eps=0.5,   Y=delta", 0.5, fdp.Delta{}},
}

// Fig3KUnion / Fig3K are the figure's parameters.
const (
	Fig3KUnion = 30
	Fig3K      = 100
)

// RenderFig3 renders each panel as a text histogram, marking the
// accurate (k = k_union), lost (k < k_union) and dummy (k > k_union)
// regions, plus the summary statistics of each distribution.
func RenderFig3() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — Eq.3 PDFs with k_union=%d, K=%d\n", Fig3KUnion, Fig3K)
	fmt.Fprintf(&b, "legend: '<' lost region (k<k_union), '=' exact, '>' dummy region (k>k_union)\n\n")
	for _, p := range Fig3Panels {
		m := fdp.Mechanism{Epsilon: p.Epsilon, Shape: p.Shape}
		pdf, err := m.Distribution(Fig3K, Fig3KUnion)
		if err != nil {
			return "", fmt.Errorf("panel %q: %w", p.Label, err)
		}
		dummy, lost, err := m.Expected(Fig3K, Fig3KUnion)
		if err != nil {
			return "", err
		}
		var pLost, pExact, pDummy, maxP float64
		for j, pj := range pdf {
			k := j + 1
			switch {
			case k < Fig3KUnion:
				pLost += pj
			case k == Fig3KUnion:
				pExact += pj
			default:
				pDummy += pj
			}
			if pj > maxP {
				maxP = pj
			}
		}
		fmt.Fprintf(&b, "%s\n", p.Label)
		fmt.Fprintf(&b, "  P[lost]=%.3f  P[exact]=%.3f  P[dummy]=%.3f  E[lost]=%.2f  E[dummy]=%.2f\n",
			pLost, pExact, pDummy, lost, dummy)
		// Coarse 20-bucket histogram of the PDF.
		const bins = 20
		binW := Fig3K / bins
		for bin := 0; bin < bins; bin++ {
			lo, hi := bin*binW+1, (bin+1)*binW
			var mass float64
			for k := lo; k <= hi; k++ {
				mass += pdf[k-1]
			}
			bar := int(mass / 0.02)
			if bar > 50 {
				bar = 50
			}
			marker := ">"
			if hi < Fig3KUnion {
				marker = "<"
			} else if lo <= Fig3KUnion && Fig3KUnion <= hi {
				marker = "="
			}
			fmt.Fprintf(&b, "  k %3d-%3d %s |%s %.3f\n", lo, hi, marker, strings.Repeat("#", bar), mass)
		}
		fmt.Fprintln(&b)
	}
	return b.String(), nil
}
