// Package experiments reproduces every table and figure of the paper's
// evaluation (Sec 6). Each Run* function executes the corresponding
// sweep on the simulated devices and renders the same rows/series the
// paper reports. See DESIGN.md's experiment index for the mapping and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Key invariants: every Run* function is deterministic for a fixed seed,
// and rows render in the paper's order so outputs can be diffed against
// EXPERIMENTS.md across PRs.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/fdp"
	"repro/internal/fedora"
)

// FLRoundBaseline is the assumed non-ORAM latency of one FL round
// (communication + user-side training): 2 minutes, following the
// real-world numbers the paper cites (Sec 6.1).
const FLRoundBaseline = 2 * time.Minute

// System identifies one of the compared designs.
type System struct {
	Name    string
	Backend fedora.Backend
	Epsilon float64 // fedora semantics: 0 = perfect FDP (k = K)
}

// Systems compared throughout Sec 6.2–6.5.
var (
	SysPathORAMPlus = System{Name: "PathORAM+", Backend: fedora.BackendPathORAMPlus}
	SysFedoraEps0   = System{Name: "FEDORA(e=0)", Backend: fedora.BackendFedora, Epsilon: 0}
	SysFedoraEps1   = System{Name: "FEDORA(e=1)", Backend: fedora.BackendFedora, Epsilon: 1}
	SysDRAM         = System{Name: "DRAM-based", Backend: fedora.BackendDRAM, Epsilon: 1}
)

// PerfConfig selects one point of the performance sweep.
type PerfConfig struct {
	Scale    dataset.TableScale
	Updates  int // K per round
	System   System
	Workload dataset.Workload
	// Rounds to simulate (≥2 recommended; steady-state averaging).
	Rounds int
	// FeaturesPerClient splits K into clients (default 100, the paper's
	// per-user feature-count regime).
	FeaturesPerClient int
	// HasScratchpad models the 4 KB on-chip scratch space (default true).
	NoScratchpad bool
	// BucketBytes overrides the SSD bucket size (Sec 6.6 ablation).
	BucketBytes int
	Seed        int64
}

// PerfResult is one measured point.
type PerfResult struct {
	PerfConfig
	// KUnion / KSampled are per-round averages.
	KUnion, KSampled float64
	// SSDWrittenPerRound drives the wear model.
	SSDWrittenPerRound uint64
	// SSDBusyPerRound is the SSD's modelled active time per round.
	SSDBusyPerRound time.Duration
	// Overhead is the controller-added latency per round, with its
	// per-phase breakdown (union ①, read ③, update ⑦).
	Overhead   time.Duration
	UnionTime  time.Duration
	ReadTime   time.Duration
	UpdateTime time.Duration
	// MainORAMBytes / DRAMBytes are the provisioned capacities.
	MainORAMBytes uint64
	DRAMBytes     uint64
}

// LifetimeMonths is the Fig 7 metric: expected SSD lifetime with the
// SSD sized equal to the ORAM.
func (r PerfResult) LifetimeMonths() float64 {
	life := costmodel.SSDLifetime(r.MainORAMBytes, r.SSDWrittenPerRound, r.RoundDuration())
	return costmodel.Months(life)
}

// RoundDuration is the end-to-end round latency.
func (r PerfResult) RoundDuration() time.Duration {
	return FLRoundBaseline + r.Overhead
}

// OverheadPct is the Fig 8 metric: added latency relative to the
// 2-minute baseline round.
func (r PerfResult) OverheadPct() float64 {
	return 100 * float64(r.Overhead) / float64(FLRoundBaseline)
}

// Design converts the result into the Fig 9 cost-model input.
func (r PerfResult) Design() costmodel.Design {
	d := costmodel.Design{
		Name:                    r.System.Name,
		DRAMBytes:               r.DRAMBytes,
		RoundDuration:           r.RoundDuration(),
		SSDBytesWrittenPerRound: r.SSDWrittenPerRound,
		SSDBusyPerRound:         r.SSDBusyPerRound,
	}
	if r.System.Backend == fedora.BackendDRAM {
		// The DRAM design holds the main ORAM in DRAM.
		d.DRAMBytes += r.MainORAMBytes
		d.SSDBytesWrittenPerRound = 0
		d.SSDBusyPerRound = 0
	} else {
		d.SSDBytes = r.MainORAMBytes
	}
	return d
}

// RunPerf executes one performance point in phantom (accounting-only)
// mode and averages per-round statistics.
func RunPerf(cfg PerfConfig) (PerfResult, error) {
	if cfg.Rounds == 0 {
		cfg.Rounds = 2
	}
	if cfg.FeaturesPerClient == 0 {
		cfg.FeaturesPerClient = 100
	}
	clients := cfg.Updates / cfg.FeaturesPerClient
	if clients < 1 {
		clients = 1
	}
	dim := cfg.Scale.EntryBytes / 4
	ctrl, err := fedora.New(fedora.Config{
		Backend:              cfg.System.Backend,
		NumRows:              cfg.Scale.Rows,
		Dim:                  dim,
		Epsilon:              cfg.System.Epsilon,
		HideCount:            cfg.Workload.HideCount,
		MaxClientsPerRound:   clients,
		MaxFeaturesPerClient: cfg.FeaturesPerClient,
		Seed:                 cfg.Seed,
		Phantom:              true,
		HasScratchpad:        !cfg.NoScratchpad,
		BucketBytes:          cfg.BucketBytes,
	})
	if err != nil {
		return PerfResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	res := PerfResult{
		PerfConfig:    cfg,
		MainORAMBytes: ctrl.MainORAMBytes(),
		DRAMBytes:     ctrl.DRAMResidentBytes(),
	}
	var totUnion, totSampled int
	var totOverhead time.Duration
	for round := 0; round < cfg.Rounds; round++ {
		reqs := cfg.Workload.GenRound(cfg.Scale.Rows, clients, cfg.FeaturesPerClient, rng)
		r, err := ctrl.BeginRound(reqs)
		if err != nil {
			return res, err
		}
		// The perf study measures the server-side ORAM pipeline (steps ①,
		// ③, ⑦). Steps ④/⑥ (serving users and collecting gradients)
		// overlap with the 2-minute client-side window and are not on the
		// controller's critical path.
		st, err := r.Finish()
		if err != nil {
			return res, err
		}
		totUnion += st.KUnion
		totSampled += st.KSampled
		totOverhead += st.Total()
		res.UnionTime += st.UnionTime
		res.ReadTime += st.ReadTime
		res.UpdateTime += st.UpdateTime
	}
	ssd := ctrl.SSDDevice().Stats()
	res.KUnion = float64(totUnion) / float64(cfg.Rounds)
	res.KSampled = float64(totSampled) / float64(cfg.Rounds)
	res.SSDWrittenPerRound = ssd.BytesWritten / uint64(cfg.Rounds)
	res.SSDBusyPerRound = ssd.BusyTime / time.Duration(cfg.Rounds)
	res.Overhead = totOverhead / time.Duration(cfg.Rounds)
	res.UnionTime /= time.Duration(cfg.Rounds)
	res.ReadTime /= time.Duration(cfg.Rounds)
	res.UpdateTime /= time.Duration(cfg.Rounds)
	return res, nil
}

// SweepOptions trims the full sweep for quick runs.
type SweepOptions struct {
	// Quick restricts to the Small/10K point and two workloads.
	Quick bool
	// Rounds per point (default 2).
	Rounds int
	Seed   int64
}

func (o SweepOptions) scales() []dataset.TableScale {
	if o.Quick {
		return dataset.Scales[:1]
	}
	return dataset.Scales
}

func (o SweepOptions) updates() []int {
	if o.Quick {
		return dataset.UpdateCounts[:1]
	}
	return dataset.UpdateCounts
}

func (o SweepOptions) workloads() []dataset.Workload {
	if o.Quick {
		return []dataset.Workload{dataset.PerfWorkloads[0], dataset.PerfWorkloads[4]}
	}
	return dataset.PerfWorkloads
}

// SweepPoint couples a result with its sweep coordinates for rendering.
type SweepPoint struct {
	Scale    string
	Updates  int
	System   string
	Workload string // "All" for workload-independent systems
	Result   PerfResult
}

// RunSweep executes the Fig 7/8 sweep: for each (scale, updates), Path
// ORAM+ and FEDORA(ε=0) once (their behaviour is workload-independent —
// k = K always), and FEDORA(ε=1) once per workload.
func RunSweep(o SweepOptions) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, sc := range o.scales() {
		for _, upd := range o.updates() {
			for _, sys := range []System{SysPathORAMPlus, SysFedoraEps0} {
				res, err := RunPerf(PerfConfig{
					Scale: sc, Updates: upd, System: sys,
					Workload: dataset.PerfWorkloads[0], // irrelevant: k = K
					Rounds:   o.Rounds, Seed: o.Seed,
				})
				if err != nil {
					return nil, err
				}
				out = append(out, SweepPoint{sc.Name, upd, sys.Name, "All", res})
			}
			for _, w := range o.workloads() {
				res, err := RunPerf(PerfConfig{
					Scale: sc, Updates: upd, System: SysFedoraEps1,
					Workload: w, Rounds: o.Rounds, Seed: o.Seed,
				})
				if err != nil {
					return nil, err
				}
				out = append(out, SweepPoint{sc.Name, upd, SysFedoraEps1.Name, w.Name, res})
			}
		}
	}
	return out, nil
}

// RenderFig7 renders the SSD-lifetime table (Fig 7).
func RenderFig7(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — Expected SSD lifetime (months); SSD sized equal to the ORAM\n")
	tw := newTable(&b, "Scale", "Updates/round", "System", "Workload", "Lifetime (months)", "vs PathORAM+")
	base := map[string]float64{}
	for _, p := range points {
		if p.System == SysPathORAMPlus.Name {
			base[p.Scale+"|"+fmt.Sprint(p.Updates)] = p.Result.LifetimeMonths()
		}
	}
	type group struct {
		scale   string
		updates int
	}
	var lastGroup group
	flushGeomean := func(g group) {
		// The paper's Geomean bar: FEDORA(ε=1) across workloads.
		gm, ok := GeomeanLifetime(points, g.scale, g.updates, SysFedoraEps1.Name)
		if !ok {
			return
		}
		rel := ""
		if b0 := base[g.scale+"|"+fmt.Sprint(g.updates)]; b0 > 0 {
			rel = fmt.Sprintf("%.1fx", gm/b0)
		}
		tw.row(g.scale, fmt.Sprint(g.updates), SysFedoraEps1.Name, "Geomean",
			fmt.Sprintf("%.2f", gm), rel)
	}
	for i, p := range points {
		g := group{p.Scale, p.Updates}
		if i > 0 && g != lastGroup {
			flushGeomean(lastGroup)
		}
		lastGroup = g
		life := p.Result.LifetimeMonths()
		rel := ""
		if b0 := base[p.Scale+"|"+fmt.Sprint(p.Updates)]; b0 > 0 && p.System != SysPathORAMPlus.Name {
			rel = fmt.Sprintf("%.1fx", life/b0)
		}
		tw.row(p.Scale, fmt.Sprint(p.Updates), p.System, p.Workload,
			fmt.Sprintf("%.2f", life), rel)
	}
	if len(points) > 0 {
		flushGeomean(lastGroup)
	}
	tw.flush()
	return b.String()
}

// RenderFig8 renders the round-latency-overhead table (Fig 8).
func RenderFig8(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — ORAM overhead per FL round (vs the %v baseline round)\n", FLRoundBaseline)
	tw := newTable(&b, "Scale", "Updates/round", "System", "Workload", "Overhead", "Overhead %")
	for _, p := range points {
		tw.row(p.Scale, fmt.Sprint(p.Updates), p.System, p.Workload,
			fmtDuration(p.Result.Overhead), fmt.Sprintf("%.1f%%", p.Result.OverheadPct()))
	}
	tw.flush()
	return b.String()
}

// RenderFig8Breakdown renders the per-phase decomposition of each
// point's overhead — the stacked-bar view of Figure 8 (union scan ①,
// download ③, write-back ⑦).
func RenderFig8Breakdown(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 (breakdown) — controller overhead by phase\n")
	tw := newTable(&b, "Scale", "Updates/round", "System", "Workload", "Union", "Read", "Update", "Total")
	for _, p := range points {
		r := p.Result
		tw.row(p.Scale, fmt.Sprint(p.Updates), p.System, p.Workload,
			fmtDuration(r.UnionTime), fmtDuration(r.ReadTime),
			fmtDuration(r.UpdateTime), fmtDuration(r.Overhead))
	}
	tw.flush()
	return b.String()
}

// Fig9Row is one normalized cost/power/energy triple, plus the carbon
// extension.
type Fig9Row struct {
	Scale, System, Workload string
	Rel                     costmodel.Relative
	RelCarbon               float64
}

// RunFig9 computes the Fig 9 comparison: each SSD design normalized by
// the DRAM-based design at the same scale/updates/workload.
func RunFig9(o SweepOptions) ([]Fig9Row, error) {
	var rows []Fig9Row
	// The paper pairs Small/10K, Medium/100K, Large/1M for Fig 9's three
	// groups.
	pairs := [][2]int{{0, 0}, {1, 1}, {2, 2}}
	if o.Quick {
		pairs = pairs[:1]
	}
	for _, pr := range pairs {
		sc := dataset.Scales[pr[0]]
		upd := dataset.UpdateCounts[pr[1]]
		w := dataset.PerfWorkloads[1] // Taobao hide-val as representative
		dramRes, err := RunPerf(PerfConfig{Scale: sc, Updates: upd, System: SysDRAM, Workload: w, Rounds: o.Rounds, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		base := dramRes.Design()
		for _, sys := range []System{SysPathORAMPlus, SysFedoraEps0, SysFedoraEps1} {
			res, err := RunPerf(PerfConfig{Scale: sc, Updates: upd, System: sys, Workload: w, Rounds: o.Rounds, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			d := res.Design()
			rows = append(rows, Fig9Row{
				Scale: sc.Name, System: sys.Name, Workload: w.Name,
				Rel:       d.RelativeTo(base),
				RelCarbon: d.CarbonPerYear() / base.CarbonPerYear(),
			})
		}
	}
	return rows, nil
}

// RenderFig9 renders the normalized cost table (with a carbon column —
// our extension of the Sec 6.5 sustainability argument).
func RenderFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — Hardware cost / power / energy / carbon normalized to the DRAM-based design\n")
	tw := newTable(&b, "Scale", "System", "HW cost", "Power", "Energy/round", "Carbon/yr")
	for _, r := range rows {
		tw.row(r.Scale, r.System,
			fmt.Sprintf("%.1f%%", 100*r.Rel.HardwareCost),
			fmt.Sprintf("%.1f%%", 100*r.Rel.Power),
			fmt.Sprintf("%.1f%%", 100*r.Rel.Energy),
			fmt.Sprintf("%.1f%%", 100*r.RelCarbon))
	}
	tw.flush()
	return b.String()
}

// Fig10Row is one scratchpad-ablation point.
type Fig10Row struct {
	Scale   string
	Updates int
	// With / Without are round overheads with and without the 4 KB
	// on-chip scratch space; Slowdown = Without/With.
	With, Without time.Duration
	Slowdown      float64
}

// RunFig10 reproduces the scratchpad ablation: the paper pairs
// Small/10K, Medium/100K, Large/1M.
func RunFig10(o SweepOptions) ([]Fig10Row, error) {
	pairs := [][2]int{{0, 0}, {1, 1}, {2, 2}}
	if o.Quick {
		pairs = pairs[:1]
	}
	var rows []Fig10Row
	for _, pr := range pairs {
		sc := dataset.Scales[pr[0]]
		upd := dataset.UpdateCounts[pr[1]]
		w := dataset.PerfWorkloads[2]
		with, err := RunPerf(PerfConfig{Scale: sc, Updates: upd, System: SysFedoraEps1, Workload: w, Rounds: o.Rounds, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		without, err := RunPerf(PerfConfig{Scale: sc, Updates: upd, System: SysFedoraEps1, Workload: w, Rounds: o.Rounds, Seed: o.Seed, NoScratchpad: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			Scale: sc.Name, Updates: upd,
			With: with.Overhead, Without: without.Overhead,
			Slowdown: float64(without.Overhead) / float64(with.Overhead),
		})
	}
	return rows, nil
}

// RenderFig10 renders the ablation table.
func RenderFig10(rows []Fig10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 — FEDORA latency with vs without the 4 KB on-chip scratchpad\n")
	tw := newTable(&b, "Scale", "Updates/round", "With SRAM", "No SRAM", "Slowdown")
	for _, r := range rows {
		tw.row(r.Scale, fmt.Sprint(r.Updates), fmtDuration(r.With), fmtDuration(r.Without),
			fmt.Sprintf("%.2fx", r.Slowdown))
	}
	tw.flush()
	return b.String()
}

// BucketAblationRow is one Sec 6.6 bucket-size point.
type BucketAblationRow struct {
	BucketBytes    int
	EvictPeriod    int
	LifetimeMonths float64
	Overhead       time.Duration
}

// RunBucketAblation reproduces the Sec 6.6 experiment: growing the
// bucket from 4 KB to 16 KB on the Small table trades latency for
// lifetime.
func RunBucketAblation(o SweepOptions) ([]BucketAblationRow, error) {
	var rows []BucketAblationRow
	for _, bb := range []int{4096, 8192, 16384} {
		res, err := RunPerf(PerfConfig{
			Scale: dataset.Scales[0], Updates: 10000, System: SysFedoraEps1,
			Workload: dataset.PerfWorkloads[2], Rounds: o.Rounds, Seed: o.Seed,
			BucketBytes: bb,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BucketAblationRow{
			BucketBytes:    bb,
			LifetimeMonths: res.LifetimeMonths(),
			Overhead:       res.Overhead,
		})
	}
	return rows, nil
}

// RenderBucketAblation renders the Sec 6.6 table.
func RenderBucketAblation(rows []BucketAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec 6.6 — Bucket-size ablation (Small table, 10K updates, FEDORA e=1)\n")
	tw := newTable(&b, "Bucket", "Lifetime (months)", "Overhead", "vs 4KB lifetime", "vs 4KB latency")
	var baseLife float64
	var baseOv time.Duration
	for i, r := range rows {
		if i == 0 {
			baseLife, baseOv = r.LifetimeMonths, r.Overhead
		}
		tw.row(fmt.Sprintf("%dKB", r.BucketBytes/1024),
			fmt.Sprintf("%.2f", r.LifetimeMonths), fmtDuration(r.Overhead),
			fmt.Sprintf("%+.0f%%", 100*(r.LifetimeMonths/baseLife-1)),
			fmt.Sprintf("%+.0f%%", 100*(float64(r.Overhead)/float64(baseOv)-1)))
	}
	tw.flush()
	return b.String()
}

// ReducedAccessPct is 1 − k/K in percent, the Table 1 reduced-access
// metric for a perf point.
func (r PerfResult) ReducedAccessPct() float64 {
	if r.Updates == 0 {
		return 0
	}
	return 100 * (1 - r.KSampled/float64(r.Updates))
}

// Eps1LifetimeGain compares ε=1 against ε=0 lifetime at one point,
// reproducing the per-workload gains quoted in Sec 6.2.
func Eps1LifetimeGain(points []SweepPoint, scale string, updates int, workload string) (float64, bool) {
	var e0, e1 float64
	for _, p := range points {
		if p.Scale != scale || p.Updates != updates {
			continue
		}
		if p.System == SysFedoraEps0.Name {
			e0 = p.Result.LifetimeMonths()
		}
		if p.System == SysFedoraEps1.Name && p.Workload == workload {
			e1 = p.Result.LifetimeMonths()
		}
	}
	if e0 == 0 || e1 == 0 {
		return 0, false
	}
	return e1 / e0, true
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	}
}

// epsName pretty-prints an epsilon for table rows.
func epsName(eps float64) string {
	if eps == fdp.EpsilonInfinity {
		return "inf"
	}
	return fmt.Sprintf("%g", eps)
}
