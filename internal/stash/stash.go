// Package stash implements the ORAM stash: the bounded buffer that holds
// blocks which are in transit between tree paths (Sec 2.3 of the FEDORA
// paper). The Path ORAM invariant is that every block is either in a
// bucket along its assigned path or in the stash.
//
// FEDORA places the stash in off-chip DRAM (Sec 4.4, Optimization 3),
// which allows it to be much larger than an on-chip stash; accesses to it
// must then be data-oblivious (linear scans), whose DRAM traffic the ORAM
// layers charge to the device model. This package provides the functional
// container plus occupancy/high-water-mark accounting and overflow
// detection so property tests can validate the paper's stash-occupancy
// arguments (Sec 4.4, privacy analysis).
package stash

import (
	"errors"
	"fmt"
	"sort"
)

// ErrOverflow is returned when an insert would exceed the stash capacity.
// In a correctly parameterized ORAM this is a negligible-probability
// event; the simulator surfaces it loudly instead of corrupting state.
var ErrOverflow = errors.New("stash: overflow")

// Block is a data block held in the stash.
type Block struct {
	ID   uint64
	Leaf uint32 // currently assigned path
	Data []byte // payload; nil in phantom (accounting-only) mode
}

// Stash holds up to capacity blocks.
type Stash struct {
	capacity int
	blocks   map[uint64]*Block
	peak     int // high-water mark
}

// New creates a stash with the given capacity. capacity <= 0 means
// unbounded (used by the buffer ORAM, which is sized to never overflow
// by construction — Sec 4.3).
func New(capacity int) *Stash {
	return &Stash{capacity: capacity, blocks: make(map[uint64]*Block)}
}

// Put inserts or replaces a block. Replacing an existing ID never
// overflows; inserting a new one fails with ErrOverflow at capacity.
func (s *Stash) Put(b *Block) error {
	if b == nil {
		return errors.New("stash: nil block")
	}
	if _, exists := s.blocks[b.ID]; !exists && s.capacity > 0 && len(s.blocks) >= s.capacity {
		return fmt.Errorf("%w: capacity %d", ErrOverflow, s.capacity)
	}
	s.blocks[b.ID] = b
	if len(s.blocks) > s.peak {
		s.peak = len(s.blocks)
	}
	return nil
}

// Get returns the block with the given ID, or nil.
func (s *Stash) Get(id uint64) *Block { return s.blocks[id] }

// Remove deletes and returns the block with the given ID, or nil.
func (s *Stash) Remove(id uint64) *Block {
	b := s.blocks[id]
	delete(s.blocks, id)
	return b
}

// Len returns the current occupancy.
func (s *Stash) Len() int { return len(s.blocks) }

// Peak returns the high-water mark since creation.
func (s *Stash) Peak() int { return s.peak }

// Capacity returns the configured capacity (0 = unbounded).
func (s *Stash) Capacity() int { return s.capacity }

// EvictableFor returns up to max blocks whose assigned leaf shares the
// same length-`level` path prefix as leaf — i.e. blocks that may legally
// be placed into the bucket at depth `level` on the path to `leaf` in a
// tree with `treeLevels` levels (root = level 0). This is the greedy
// selection of Path ORAM eviction. Blocks are returned in ascending ID
// order — map-order iteration would make the eviction choice (and hence
// the tree bytes) differ run to run, breaking bit-identical state
// snapshots — and are NOT removed; callers remove the ones they place.
func (s *Stash) EvictableFor(leaf uint32, level, treeLevels, max int) []*Block {
	var out []*Block
	shift := uint(treeLevels - 1 - level)
	want := leaf >> shift
	for _, id := range s.IDs() {
		b := s.blocks[id]
		if b.Leaf>>shift == want {
			out = append(out, b)
			if len(out) == max {
				break
			}
		}
	}
	return out
}

// ForEach calls fn for every block; iteration order is unspecified.
func (s *Stash) ForEach(fn func(*Block)) {
	for _, b := range s.blocks {
		fn(b)
	}
}

// IDs returns the IDs of all resident blocks in ascending order (a
// deterministic order keeps eviction and serialization reproducible).
func (s *Stash) IDs() []uint64 {
	out := make([]uint64, 0, len(s.blocks))
	for id := range s.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ScanBytes returns the number of DRAM bytes one full oblivious linear
// scan of the stash touches, given the per-slot stored size. The scan
// must cover capacity slots (not just occupied ones) to stay oblivious.
func (s *Stash) ScanBytes(slotBytes int) uint64 {
	n := s.capacity
	if n <= 0 {
		n = len(s.blocks)
	}
	return uint64(n) * uint64(slotBytes)
}
