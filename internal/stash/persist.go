package stash

import (
	"fmt"
	"sort"

	"repro/internal/persist"
)

const stashSnapshotVersion = 1

// Snapshot serializes the resident blocks (sorted by ID for determinism)
// plus the high-water mark. Capacity is configuration, recorded only as
// a restore-time guard.
func (s *Stash) Snapshot() ([]byte, error) {
	var e persist.Encoder
	e.U8(stashSnapshotVersion)
	e.I64(int64(s.capacity))
	e.I64(int64(s.peak))
	ids := s.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.U64(uint64(len(ids)))
	for _, id := range ids {
		b := s.blocks[id]
		e.U64(b.ID)
		e.U32(b.Leaf)
		e.Bytes(b.Data)
	}
	return e.Finish(), nil
}

// Restore replaces the stash contents with a snapshot taken from a
// same-capacity stash.
func (s *Stash) Restore(b []byte) error {
	d := persist.NewDecoder(b)
	if v := d.U8(); d.Err() == nil && v != stashSnapshotVersion {
		return fmt.Errorf("stash: unsupported snapshot version %d", v)
	}
	capacity := int(d.I64())
	peak := int(d.I64())
	n := d.U64()
	if d.Err() == nil && capacity != s.capacity {
		return fmt.Errorf("stash: snapshot capacity %d != stash capacity %d", capacity, s.capacity)
	}
	if d.Err() == nil && s.capacity > 0 && n > uint64(s.capacity) {
		return fmt.Errorf("stash: snapshot holds %d blocks, capacity %d", n, s.capacity)
	}
	blocks := make(map[uint64]*Block, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		blk := &Block{ID: d.U64(), Leaf: d.U32()}
		data := d.Bytes()
		if len(data) > 0 {
			blk.Data = data
		}
		if d.Err() == nil {
			blocks[blk.ID] = blk
		}
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("stash: snapshot: %w", err)
	}
	s.blocks = blocks
	s.peak = peak
	return nil
}
