package stash

import (
	"errors"
	"testing"
)

func TestPutGetRemove(t *testing.T) {
	s := New(10)
	if err := s.Put(&Block{ID: 1, Leaf: 3, Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if b := s.Get(1); b == nil || b.Leaf != 3 || string(b.Data) != "a" {
		t.Errorf("Get(1) = %+v", s.Get(1))
	}
	if b := s.Get(2); b != nil {
		t.Errorf("Get(missing) = %+v, want nil", b)
	}
	if b := s.Remove(1); b == nil || b.ID != 1 {
		t.Errorf("Remove(1) = %+v", b)
	}
	if s.Len() != 0 {
		t.Errorf("Len after remove = %d", s.Len())
	}
	if s.Remove(1) != nil {
		t.Error("double remove returned a block")
	}
}

func TestOverflow(t *testing.T) {
	s := New(2)
	if err := s.Put(&Block{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(&Block{ID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(&Block{ID: 3}); !errors.Is(err, ErrOverflow) {
		t.Errorf("third insert err = %v, want ErrOverflow", err)
	}
	// Replacement of an existing ID is allowed at capacity.
	if err := s.Put(&Block{ID: 2, Leaf: 9}); err != nil {
		t.Errorf("replacement failed: %v", err)
	}
	if s.Get(2).Leaf != 9 {
		t.Error("replacement did not take effect")
	}
}

func TestUnboundedStash(t *testing.T) {
	s := New(0)
	for i := uint64(0); i < 1000; i++ {
		if err := s.Put(&Block{ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1000 || s.Peak() != 1000 {
		t.Errorf("Len=%d Peak=%d", s.Len(), s.Peak())
	}
}

func TestNilBlockRejected(t *testing.T) {
	if err := New(1).Put(nil); err == nil {
		t.Error("nil block accepted")
	}
}

func TestPeakTracksHighWater(t *testing.T) {
	s := New(10)
	for i := uint64(0); i < 5; i++ {
		_ = s.Put(&Block{ID: i})
	}
	for i := uint64(0); i < 4; i++ {
		s.Remove(i)
	}
	if s.Peak() != 5 || s.Len() != 1 {
		t.Errorf("Peak=%d Len=%d, want 5/1", s.Peak(), s.Len())
	}
}

func TestEvictableFor(t *testing.T) {
	// Tree with 3 levels => 4 leaves (0..3). Level 0 is the root (prefix
	// length 0: everything matches), level 2 is the leaf itself.
	s := New(0)
	_ = s.Put(&Block{ID: 1, Leaf: 0})
	_ = s.Put(&Block{ID: 2, Leaf: 1})
	_ = s.Put(&Block{ID: 3, Leaf: 3})

	root := s.EvictableFor(0, 0, 3, 10)
	if len(root) != 3 {
		t.Errorf("root-level evictable = %d, want 3", len(root))
	}
	// Level 1 on the path to leaf 0: leaves 0 and 1 share that subtree.
	mid := s.EvictableFor(0, 1, 3, 10)
	if len(mid) != 2 {
		t.Errorf("level-1 evictable = %d, want 2 (leaves 0,1)", len(mid))
	}
	// Leaf level: only exact leaf matches.
	leaf := s.EvictableFor(3, 2, 3, 10)
	if len(leaf) != 1 || leaf[0].ID != 3 {
		t.Errorf("leaf-level evictable = %+v", leaf)
	}
	// max truncates.
	if got := s.EvictableFor(0, 0, 3, 2); len(got) != 2 {
		t.Errorf("max=2 returned %d", len(got))
	}
}

func TestForEachAndIDs(t *testing.T) {
	s := New(0)
	for i := uint64(0); i < 4; i++ {
		_ = s.Put(&Block{ID: i})
	}
	seen := map[uint64]bool{}
	s.ForEach(func(b *Block) { seen[b.ID] = true })
	if len(seen) != 4 {
		t.Errorf("ForEach visited %d blocks", len(seen))
	}
	if len(s.IDs()) != 4 {
		t.Errorf("IDs() = %v", s.IDs())
	}
}

func TestScanBytes(t *testing.T) {
	s := New(100)
	if got := s.ScanBytes(64); got != 6400 {
		t.Errorf("ScanBytes = %d, want 6400 (covers capacity, not occupancy)", got)
	}
	u := New(0)
	_ = u.Put(&Block{ID: 1})
	if got := u.ScanBytes(64); got != 64 {
		t.Errorf("unbounded ScanBytes = %d, want 64", got)
	}
}
