package stash

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStashSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const capacity = 300
		a := New(capacity)
		count := int(n) % 50
		for i := 0; i < count; i++ {
			data := make([]byte, 32)
			rng.Read(data)
			if err := a.Put(&Block{ID: uint64(i * 3), Leaf: uint32(rng.Intn(64)), Data: data}); err != nil {
				return false
			}
		}
		snap, err := a.Snapshot()
		if err != nil {
			return false
		}
		b := New(capacity)
		if err := b.Restore(snap); err != nil {
			return false
		}
		if a.Len() != b.Len() || a.Peak() != b.Peak() {
			return false
		}
		for _, id := range a.IDs() {
			ba, bb := a.Get(id), b.Get(id)
			if bb == nil || ba.Leaf != bb.Leaf || !bytes.Equal(ba.Data, bb.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStashRestoreGuards(t *testing.T) {
	a := New(10)
	a.Put(&Block{ID: 1, Leaf: 2, Data: []byte{1, 2, 3}})
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := New(20).Restore(snap); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
	if err := New(10).Restore(snap[:4]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
