package shard

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/persist"
)

// Engine.Snapshot/Restore serialize every partition as a NAMED section
// of a persist.Checkpoint container (the same CRC-framed format the
// durable checkpoint files use), plus a meta section pinning the shard
// geometry. Restoring a snapshot taken at a different shard count is
// rejected: the per-shard ORAM trees, position maps and RNG streams are
// only meaningful under the exact partition they were written with.

// engineSnapshotVersion stamps the meta section.
const engineSnapshotVersion = 1

// metaSection / SectionName name the container sections.
const metaSection = "shard/meta"

// SectionName returns the checkpoint-section name of shard i.
func SectionName(i int) string { return fmt.Sprintf("shard/%04d", i) }

// ErrRoundOpen is returned by Snapshot when a round is in flight.
var ErrRoundOpen = errors.New("shard: cannot snapshot mid-round")

// Snapshot serializes the engine geometry and every partition.
func (e *Engine) Snapshot() ([]byte, error) {
	e.mu.Lock()
	if e.inRound {
		e.mu.Unlock()
		return nil, ErrRoundOpen
	}
	e.mu.Unlock()

	cp := persist.NewCheckpoint()
	var meta persist.Encoder
	meta.U8(engineSnapshotVersion)
	meta.U32(uint32(e.cfg.Shards))
	meta.U64(e.cfg.NumRows)
	cp.Put(metaSection, meta.Finish())
	for i, p := range e.parts {
		blob, err := p.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		cp.Put(SectionName(i), blob)
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore replaces every partition's state from a snapshot taken by an
// engine with identical geometry. A diverging shard count or row count
// is rejected before any partition is touched.
func (e *Engine) Restore(b []byte) error {
	e.mu.Lock()
	if e.inRound {
		e.mu.Unlock()
		return ErrRoundOpen
	}
	e.mu.Unlock()

	cp, err := persist.DecodeCheckpoint(bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("shard: engine snapshot: %w", err)
	}
	meta, ok := cp.Get(metaSection)
	if !ok {
		return fmt.Errorf("shard: engine snapshot has no %q section", metaSection)
	}
	d := persist.NewDecoder(meta)
	version := d.U8()
	shards := int(d.U32())
	numRows := d.U64()
	if err := d.Err(); err != nil {
		return fmt.Errorf("shard: engine snapshot meta: %w", err)
	}
	if version != engineSnapshotVersion {
		return fmt.Errorf("shard: unsupported engine snapshot version %d", version)
	}
	if shards != e.cfg.Shards {
		return fmt.Errorf("shard: snapshot was taken with %d shards, engine is configured with %d — restore requires an identical shard count", shards, e.cfg.Shards)
	}
	if numRows != e.cfg.NumRows {
		return fmt.Errorf("shard: snapshot covers %d rows, engine is configured with %d", numRows, e.cfg.NumRows)
	}
	for i, p := range e.parts {
		blob, ok := cp.Get(SectionName(i))
		if !ok {
			return fmt.Errorf("shard: engine snapshot has no %q section", SectionName(i))
		}
		if err := p.Restore(blob); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
