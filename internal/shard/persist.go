package shard

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/persist"
)

// Engine.Snapshot/Restore serialize every partition as a NAMED section
// of a persist.Checkpoint container (the same CRC-framed format the
// durable checkpoint files use), plus a meta section pinning the shard
// geometry. Restoring a snapshot taken at a different shard count is
// rejected: the per-shard ORAM trees, position maps and RNG streams are
// only meaningful under the exact partition they were written with.
// Sections are named by GLOBAL shard index (Config.Base + local index)
// so a cluster member's sections are interchangeable with the matching
// sections of a single-process engine snapshot.

// engineSnapshotVersion stamps the meta section. Version 2 added the
// Base field for slice engines (cluster members).
const engineSnapshotVersion = 2

// metaSection / SectionName name the container sections.
const metaSection = "shard/meta"

// SectionName returns the checkpoint-section name of shard i.
func SectionName(i int) string { return fmt.Sprintf("shard/%04d", i) }

// ErrRoundOpen is returned by Snapshot when a round is in flight.
var ErrRoundOpen = errors.New("shard: cannot snapshot mid-round")

// Snapshot serializes the engine geometry and every partition.
func (e *Engine) Snapshot() ([]byte, error) {
	e.mu.Lock()
	if e.inRound {
		e.mu.Unlock()
		return nil, ErrRoundOpen
	}
	e.mu.Unlock()

	cp := persist.NewCheckpoint()
	var meta persist.Encoder
	meta.U8(engineSnapshotVersion)
	meta.U32(uint32(e.cfg.Shards))
	meta.U64(e.cfg.NumRows)
	meta.U32(uint32(e.cfg.Base))
	cp.Put(metaSection, meta.Finish())
	for i, p := range e.parts {
		blob, err := p.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", e.cfg.Base+i, err)
		}
		cp.Put(SectionName(e.cfg.Base+i), blob)
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore replaces every partition's state from a snapshot taken by an
// engine with identical geometry. A diverging shard count or row count
// is rejected before any partition is touched.
func (e *Engine) Restore(b []byte) error {
	e.mu.Lock()
	if e.inRound {
		e.mu.Unlock()
		return ErrRoundOpen
	}
	e.mu.Unlock()

	cp, err := persist.DecodeCheckpoint(bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("shard: engine snapshot: %w", err)
	}
	meta, ok := cp.Get(metaSection)
	if !ok {
		return fmt.Errorf("shard: engine snapshot has no %q section", metaSection)
	}
	d := persist.NewDecoder(meta)
	version := d.U8()
	shards := int(d.U32())
	numRows := d.U64()
	base := int(d.U32())
	if err := d.Err(); err != nil {
		return fmt.Errorf("shard: engine snapshot meta: %w", err)
	}
	if version != engineSnapshotVersion {
		return fmt.Errorf("shard: unsupported engine snapshot version %d", version)
	}
	if shards != e.cfg.Shards {
		return fmt.Errorf("shard: snapshot was taken with %d shards, engine is configured with %d — restore requires an identical shard count", shards, e.cfg.Shards)
	}
	if numRows != e.cfg.NumRows {
		return fmt.Errorf("shard: snapshot covers %d rows, engine is configured with %d", numRows, e.cfg.NumRows)
	}
	if base != e.cfg.Base {
		return fmt.Errorf("shard: snapshot covers shard slice [%d,%d), engine serves [%d,%d)",
			base, base+shards, e.cfg.Base, e.cfg.Base+e.cfg.Shards)
	}
	for i, p := range e.parts {
		blob, ok := cp.Get(SectionName(e.cfg.Base + i))
		if !ok {
			return fmt.Errorf("shard: engine snapshot has no %q section", SectionName(e.cfg.Base+i))
		}
		if err := p.Restore(blob); err != nil {
			return fmt.Errorf("shard %d: %w", e.cfg.Base+i, err)
		}
	}
	return nil
}

// SnapshotShard serializes one partition, addressed by GLOBAL shard
// index. The blob is exactly the section SnapshotShard's shard would
// occupy in a full engine snapshot, so it can be replayed by
// RestoreShard on any engine (or slice engine) that owns the shard.
func (e *Engine) SnapshotShard(global int) ([]byte, error) {
	local := global - e.cfg.Base
	if local < 0 || local >= e.cfg.Shards {
		return nil, fmt.Errorf("shard: shard %d outside engine slice [%d,%d)",
			global, e.cfg.Base, e.cfg.Base+e.cfg.Shards)
	}
	e.mu.Lock()
	if e.inRound {
		e.mu.Unlock()
		return nil, ErrRoundOpen
	}
	e.mu.Unlock()
	blob, err := e.parts[local].Snapshot()
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", global, err)
	}
	return blob, nil
}

// RestoreShard replays one shard's section, addressed by GLOBAL shard
// index, onto a quiesced engine. The partition's half-open round state
// (if any) is aborted first; if the shard was quarantined it is
// returned to service and counted as a recovery. This is the migration
// primitive: export a section from wherever the shard last lived and
// replay it onto the engine that owns the shard now.
func (e *Engine) RestoreShard(global int, blob []byte) error {
	local := global - e.cfg.Base
	if local < 0 || local >= e.cfg.Shards {
		return fmt.Errorf("shard: shard %d outside engine slice [%d,%d)",
			global, e.cfg.Base, e.cfg.Base+e.cfg.Shards)
	}
	e.mu.Lock()
	if e.inRound {
		e.mu.Unlock()
		return ErrRoundOpen
	}
	e.mu.Unlock()
	e.parts[local].Abort()
	if err := e.parts[local].Restore(blob); err != nil {
		return fmt.Errorf("shard %d: %w", global, err)
	}
	e.mu.Lock()
	if e.quarantined[local] {
		e.quarantined[local] = false
		e.causes[local] = nil
		e.recoveries++
	}
	e.mu.Unlock()
	return nil
}
