package shard

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

const testDummy = ^uint64(0)

// fakeRound records the traffic one fake partition's round received.
type fakeRound struct {
	p  *fakePart
	mu sync.Mutex

	served    []uint64
	submitted []uint64
	finished  bool
}

func (r *fakeRound) ServeEntry(row uint64) ([]float32, bool, error) {
	if err := r.p.opErr("serve"); err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.served = append(r.served, row)
	return []float32{float32(r.p.id), float32(row)}, true, nil
}

func (r *fakeRound) SubmitGradient(row uint64, grad []float32, n int) (bool, error) {
	if err := r.p.opErr("submit"); err != nil {
		return false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.submitted = append(r.submitted, row)
	return true, nil
}

func (r *fakeRound) SubmitAggregate(row uint64, sum []float32, count float32) (bool, error) {
	if err := r.p.opErr("submit"); err != nil {
		return false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.submitted = append(r.submitted, row)
	return true, nil
}

func (r *fakeRound) Finish() (RoundStats, error) {
	if err := r.p.opErr("finish"); err != nil {
		return RoundStats{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finished = true
	return r.p.stats, nil
}

// fakePart is a scriptable Partition.
type fakePart struct {
	id       int
	stats    RoundStats
	beginErr error

	mu      sync.Mutex
	reqs    [][]uint64 // last BeginRound input
	rounds  []*fakeRound
	state   []byte           // snapshot payload
	aborts  int              // Abort() call count
	failOps map[string]error // scripted per-op round errors ("serve"/"submit"/"finish")
}

// failOn scripts an error for a round operation; opErr reads it back.
func (p *fakePart) failOn(op string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failOps == nil {
		p.failOps = make(map[string]error)
	}
	p.failOps[op] = err
}

func (p *fakePart) opErr(op string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failOps[op]
}

func (p *fakePart) BeginRound(requests [][]uint64) (PartitionRound, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.beginErr != nil {
		return nil, p.beginErr
	}
	p.reqs = requests
	r := &fakeRound{p: p}
	p.rounds = append(p.rounds, r)
	return r, nil
}

func (p *fakePart) Abort() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aborts++
}

func (p *fakePart) Snapshot() ([]byte, error) { return p.state, nil }
func (p *fakePart) Restore(b []byte) error {
	p.state = append([]byte(nil), b...)
	return nil
}

func newFakeEngine(t *testing.T, numRows uint64, shards, workers int) (*Engine, []*fakePart) {
	t.Helper()
	parts := make([]Partition, shards)
	fakes := make([]*fakePart, shards)
	for i := range parts {
		fakes[i] = &fakePart{id: i}
		parts[i] = fakes[i]
	}
	e, err := NewEngine(Config{Shards: shards, NumRows: numRows, Workers: workers, Dummy: testDummy}, parts)
	if err != nil {
		t.Fatal(err)
	}
	return e, fakes
}

// TestPartitionGeometry checks that the balanced contiguous split is a
// true partition: sizes sum to N, every shard is non-empty, Base/Rows
// tile the row space, and ShardOf agrees with the tiling.
func TestPartitionGeometry(t *testing.T) {
	for _, n := range []uint64{1, 2, 7, 8, 16, 100, 1000, 16384} {
		for _, s := range []int{1, 2, 3, 4, 7, 8} {
			if uint64(s) > n {
				continue
			}
			var total uint64
			for i := 0; i < s; i++ {
				rows := Rows(n, s, i)
				if rows == 0 {
					t.Fatalf("N=%d S=%d: shard %d is empty", n, s, i)
				}
				base := Base(n, s, i)
				if i > 0 && base != Base(n, s, i-1)+Rows(n, s, i-1) {
					t.Fatalf("N=%d S=%d: shard %d base %d not contiguous", n, s, i, base)
				}
				for _, row := range []uint64{base, base + rows - 1} {
					if got := ShardOf(n, s, row); got != i {
						t.Fatalf("N=%d S=%d: ShardOf(%d) = %d, want %d", n, s, row, got, i)
					}
				}
				total += rows
			}
			if total != n {
				t.Fatalf("N=%d S=%d: shard sizes sum to %d", n, s, total)
			}
		}
	}
}

// TestSeedsDistinct guards the per-shard RNG stream derivation.
func TestSeedsDistinct(t *testing.T) {
	seen := map[int64]int{}
	for _, base := range []int64{0, 1, 42, -7} {
		for i := 0; i < 64; i++ {
			s := Seed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("Seed collision: base=%d shard=%d equals earlier %d", base, i, prev)
			}
			seen[s] = i
		}
	}
}

// TestRoutingTranslatesRows verifies global→local translation, client
// structure preservation, and deterministic dummy spreading.
func TestRoutingTranslatesRows(t *testing.T) {
	e, fakes := newFakeEngine(t, 10, 4, 0) // shards sized 3,3,2,2
	reqs := [][]uint64{
		{0, 3, 9, testDummy},
		{2, 2, 8},
		{testDummy, testDummy},
	}
	r, err := e.BeginRound(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	// Shard bases for N=10,S=4 are 0,3,6,8 (sizes 3,3,2,2). Real rows
	// translate to shard-local IDs; dummy (client ci, position j) routes
	// to shard (ci+j)%4: (0,3)→3, (2,0)→2, (2,1)→3.
	wantPerShard := []([][]uint64){
		{{0}, {2, 2}, nil},
		{{0}, nil, nil},
		{nil, nil, {testDummy}},
		{{1, testDummy}, {0}, {testDummy}},
	}
	for s, fake := range fakes {
		if len(fake.reqs) != len(reqs) {
			t.Fatalf("shard %d saw %d clients, want %d", s, len(fake.reqs), len(reqs))
		}
		for ci := range reqs {
			got := fmt.Sprint(fake.reqs[ci])
			want := fmt.Sprint(wantPerShard[s][ci])
			if got != want {
				t.Errorf("shard %d client %d rows = %s, want %s", s, ci, got, want)
			}
		}
	}
}

// TestRoutingRejectsOutOfRange verifies the range check happens before
// any shard begins.
func TestRoutingRejectsOutOfRange(t *testing.T) {
	e, fakes := newFakeEngine(t, 10, 2, 0)
	if _, err := e.BeginRound([][]uint64{{10}}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	for s, fake := range fakes {
		if len(fake.rounds) != 0 {
			t.Errorf("shard %d began a round despite routing failure", s)
		}
	}
	// The engine must accept a fresh round after the failure.
	r, err := e.BeginRound([][]uint64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestServeAndSubmitRouted verifies steps ④/⑥ reach the owning shard
// with local row IDs.
func TestServeAndSubmitRouted(t *testing.T) {
	e, fakes := newFakeEngine(t, 10, 4, 2)
	r, err := e.BeginRound([][]uint64{{0, 4, 9}})
	if err != nil {
		t.Fatal(err)
	}
	entry, ok, err := r.ServeEntry(4) // shard 1 (base 3) → local 1
	if err != nil || !ok {
		t.Fatalf("ServeEntry: %v ok=%v", err, ok)
	}
	if entry[0] != 1 || entry[1] != 1 {
		t.Errorf("ServeEntry(4) hit shard/local %v, want [1 1]", entry)
	}
	if _, err := r.SubmitGradient(9, []float32{1}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := fakes[3].rounds[0].submitted; len(got) != 1 || got[0] != 1 {
		t.Errorf("SubmitGradient(9) reached shard 3 locals %v, want [1]", got)
	}
	if _, _, err := r.ServeEntry(0); !errors.Is(err, ErrRoundFinished) {
		t.Errorf("ServeEntry after Finish: %v, want ErrRoundFinished", err)
	}
}

// TestStatsMerge verifies count summing, wall-clock attribution and the
// parallel-composition round ε.
func TestStatsMerge(t *testing.T) {
	e, fakes := newFakeEngine(t, 100, 3, 0)
	fakes[0].stats = RoundStats{K: 5, KUnion: 4, KSampled: 4, Chunks: 1, RoundEpsilon: 1,
		ReadTime: 10 * time.Millisecond, UnionWallTime: time.Millisecond}
	fakes[1].stats = RoundStats{K: 7, KUnion: 6, KSampled: 8, Dummy: 2, Chunks: 2, RoundEpsilon: 0.5,
		ReadTime: 20 * time.Millisecond}
	fakes[2].stats = RoundStats{} // idle shard: no chunks, must not affect ε
	r, err := e.BeginRound([][]uint64{{1, 40, 80}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if st.K != 12 || st.KUnion != 10 || st.KSampled != 12 || st.Dummy != 2 || st.Chunks != 3 {
		t.Errorf("merged counts = %+v", st)
	}
	if st.RoundEpsilon != 1 {
		t.Errorf("RoundEpsilon = %v, want max(1, 0.5) = 1", st.RoundEpsilon)
	}
	if st.ReadTime != 30*time.Millisecond {
		t.Errorf("ReadTime = %v, want summed 30ms", st.ReadTime)
	}
	if len(st.PerShard) != 3 || st.PerShard[1].KSampled != 8 || st.PerShard[1].RoundEpsilon != 0.5 {
		t.Errorf("PerShard breakdown = %+v", st.PerShard)
	}
	var rows uint64
	for _, ss := range st.PerShard {
		rows += ss.Rows
	}
	if rows != 100 {
		t.Errorf("PerShard rows sum to %d, want 100", rows)
	}
}

// TestBeginErrorClosesStartedShards verifies that a failing shard does
// not leave its siblings wedged in an open round.
func TestBeginErrorClosesStartedShards(t *testing.T) {
	e, fakes := newFakeEngine(t, 100, 4, 0)
	boom := errors.New("boom")
	fakes[2].beginErr = boom
	if _, err := e.BeginRound([][]uint64{{1, 30, 60, 90}}); !errors.Is(err, boom) {
		t.Fatalf("BeginRound error = %v, want boom", err)
	}
	for s, fake := range fakes {
		for _, round := range fake.rounds {
			if !round.finished {
				t.Errorf("shard %d round left open after sibling failure", s)
			}
		}
	}
	fakes[2].beginErr = nil
	if _, err := e.BeginRound([][]uint64{{1}}); err != nil {
		t.Fatalf("engine wedged after shard failure: %v", err)
	}
}

// TestSecondBeginRejected covers the single-round invariant.
func TestSecondBeginRejected(t *testing.T) {
	e, _ := newFakeEngine(t, 10, 2, 0)
	r, err := e.BeginRound([][]uint64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.BeginRound([][]uint64{{2}}); !errors.Is(err, ErrRoundInProgress) {
		t.Fatalf("second BeginRound = %v, want ErrRoundInProgress", err)
	}
	if _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Finish(); !errors.Is(err, ErrRoundFinished) {
		t.Fatalf("double Finish = %v, want ErrRoundFinished", err)
	}
}

// TestConcurrentServeAcrossShards hammers ServeEntry/SubmitGradient from
// many goroutines under -race (the make check gate runs this package
// with the race detector).
func TestConcurrentServeAcrossShards(t *testing.T) {
	const n = 64
	e, _ := newFakeEngine(t, n, 8, 0)
	reqs := make([][]uint64, 4)
	for ci := range reqs {
		for row := uint64(0); row < n; row++ {
			reqs[ci] = append(reqs[ci], row)
		}
	}
	r, err := e.BeginRound(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for row := uint64(0); row < n; row++ {
				if _, _, err := r.ServeEntry(row); err != nil {
					t.Errorf("ServeEntry(%d): %v", row, err)
					return
				}
				if _, err := r.SubmitGradient(row, []float32{1}, 1); err != nil {
					t.Errorf("SubmitGradient(%d): %v", row, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestNewEngineValidation covers the constructor's geometry checks.
func TestNewEngineValidation(t *testing.T) {
	mk := func(n int) []Partition {
		parts := make([]Partition, n)
		for i := range parts {
			parts[i] = &fakePart{id: i}
		}
		return parts
	}
	cases := []struct {
		cfg   Config
		parts []Partition
		want  string
	}{
		{Config{Shards: 0, NumRows: 10}, mk(0), "Shards"},
		{Config{Shards: 2, NumRows: 0}, mk(2), "NumRows"},
		{Config{Shards: 11, NumRows: 10}, mk(11), "exceed"},
		{Config{Shards: 2, NumRows: 10}, mk(3), "partitions"},
	}
	for _, c := range cases {
		if _, err := NewEngine(c.cfg, c.parts); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("NewEngine(%+v) error = %v, want mention of %q", c.cfg, err, c.want)
		}
	}
}
