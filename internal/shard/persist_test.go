package shard

import (
	"strings"
	"testing"
)

// TestEngineSnapshotRoundTrip verifies every partition's blob survives
// the checkpoint container, keyed by its section name.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	e, fakes := newFakeEngine(t, 100, 4, 0)
	for i, fake := range fakes {
		fake.state = []byte{byte(i), byte(i + 1), byte(i + 2)}
	}
	blob, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	e2, fakes2 := newFakeEngine(t, 100, 4, 0)
	if err := e2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	for i, fake := range fakes2 {
		if string(fake.state) != string(fakes[i].state) {
			t.Errorf("shard %d restored %v, want %v", i, fake.state, fakes[i].state)
		}
	}
}

// TestRestoreRejectsShardCountMismatch pins the clear-error requirement:
// a snapshot written under a different partition count must not restore.
func TestRestoreRejectsShardCountMismatch(t *testing.T) {
	e4, _ := newFakeEngine(t, 100, 4, 0)
	blob, err := e4.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	e2, fakes2 := newFakeEngine(t, 100, 2, 0)
	err = e2.Restore(blob)
	if err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	if !strings.Contains(err.Error(), "4 shards") || !strings.Contains(err.Error(), "2") {
		t.Errorf("mismatch error %q does not name both shard counts", err)
	}
	for i, fake := range fakes2 {
		if fake.state != nil {
			t.Errorf("shard %d state mutated by rejected restore", i)
		}
	}
}

// TestRestoreRejectsRowCountMismatch: same geometry guard for NumRows.
func TestRestoreRejectsRowCountMismatch(t *testing.T) {
	e, _ := newFakeEngine(t, 100, 4, 0)
	blob, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := newFakeEngine(t, 200, 4, 0)
	if err := e2.Restore(blob); err == nil || !strings.Contains(err.Error(), "rows") {
		t.Errorf("row-count mismatch error = %v", err)
	}
}

// TestRestoreRejectsGarbage: corrupt container bytes fail cleanly.
func TestRestoreRejectsGarbage(t *testing.T) {
	e, _ := newFakeEngine(t, 100, 4, 0)
	if err := e.Restore([]byte("not a checkpoint")); err == nil {
		t.Fatal("garbage restore accepted")
	}
}

// TestSnapshotRejectedMidRound: engine state is only serializable
// between rounds, like the monolithic controller.
func TestSnapshotRejectedMidRound(t *testing.T) {
	e, _ := newFakeEngine(t, 100, 4, 0)
	r, err := e.BeginRound([][]uint64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); err != ErrRoundOpen {
		t.Errorf("mid-round Snapshot = %v, want ErrRoundOpen", err)
	}
	if _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); err != nil {
		t.Errorf("post-round Snapshot failed: %v", err)
	}
}
