package shard

import (
	"time"

	"repro/internal/fdp"
)

// RoundStats summarizes one FL round for the evaluation harness. It is
// produced by the monolithic fedora pipeline and by this package's
// Engine alike (the fedora package aliases it), so the fl/api/experiment
// layers see one shape regardless of the shard count.
type RoundStats struct {
	// K is the total number of client requests (public).
	K int
	// KUnion is Σ per-chunk unique requests (secret; exposed here for
	// experiment reporting only).
	KUnion int
	// KSampled is Σ per-chunk sampled k — the main-ORAM access count an
	// adversary observes.
	KSampled int
	// Dummy / Lost are Σ max(0, k−k_union) and Σ max(0, k_union−k).
	Dummy int
	Lost  int
	// CrossChunkDup counts accesses wasted on rows already fetched by an
	// earlier chunk this round (the chunking overhead the paper notes).
	CrossChunkDup int
	// Chunks is the number of union chunks (summed across shards).
	Chunks int
	// RoundEpsilon is the ε-FDP guarantee of the round (parallel
	// composition over chunks, and over shards when sharded).
	RoundEpsilon float64
	// Phase durations (modelled device time, not wall clock). When
	// sharded these sum over shards: they model the work the devices
	// performed, not the elapsed time.
	UnionTime     time.Duration
	ReadTime      time.Duration
	ServeTime     time.Duration
	AggregateTime time.Duration
	UpdateTime    time.Duration
	// Wall-clock phase durations measured on the host (as opposed to the
	// modelled device times above): the oblivious-union scans, the main-
	// ORAM → buffer-ORAM reads of BeginRound, and the write-back pass of
	// Finish. When sharded these are the PARALLEL section's elapsed time,
	// which is what shrinks as the shard count grows.
	//
	// Under the lookahead prefetch pipeline (Prefetched true) the reads
	// run on a background fetcher concurrent with training, and
	// ReadWallTime narrows to mean BLOCKING read time only: the union of
	// intervals in which at least one serve was waiting for a row the
	// fetcher had not loaded yet. The fetcher's own elapsed time is
	// reported separately as PrefetchWallTime.
	UnionWallTime  time.Duration
	ReadWallTime   time.Duration
	FinishWallTime time.Duration
	// Prefetched reports whether this round ran the lookahead prefetch
	// pipeline (fedora.Config.Prefetch): reads streamed from a background
	// fetcher and the write-back pass was deferred to the next round's
	// fetcher. It flips the meaning of ReadWallTime (see above) and is
	// how merge layers know to aggregate the streamed walls.
	Prefetched bool
	// PrefetchWallTime is the background fetcher's elapsed time for this
	// round's main-ORAM → buffer-ORAM reads (overlapped with training).
	// EvictWallTime is the elapsed time of draining the PREVIOUS round's
	// deferred write-back pass, which runs on this round's fetcher before
	// its reads. Sharded: max across shards (fetchers run concurrently).
	PrefetchWallTime time.Duration
	EvictWallTime    time.Duration
	// EvictTime is the modelled device time of the drained write-back
	// pass (the share of the previous round's UpdateTime that sync mode
	// would have spent inside Finish). Summed across shards.
	EvictTime time.Duration
	// PrefetchHits / PrefetchWasted count the distinct staged rows that
	// were / were never served this round. Summed across shards.
	PrefetchHits   uint64
	PrefetchWasted uint64
	// WireBytes is the upload-plane payload volume folded into this
	// round (0 when the legacy float gradient path was used). Set by the
	// fl/api layers from the wire aggregator, not by the ORAM pipeline.
	WireBytes uint64
	// Saturations counts fixed-point encodings that clipped on the
	// upload plane this round. Non-zero means the secagg Scale is
	// misconfigured for the gradient magnitudes in play and the masked
	// sums are silently wrong at the clipped coordinates.
	Saturations int
	// QuarantinedShards counts shards that sat out this round (their
	// PerShard entries are zero and carry Quarantined=true).
	QuarantinedShards int
	// PerShard is the per-shard breakdown (nil for a monolithic round).
	PerShard []ShardStats
}

// Total is the controller-side critical-path time added to the FL round
// (modelled device time).
func (s RoundStats) Total() time.Duration {
	return s.UnionTime + s.ReadTime + s.ServeTime + s.AggregateTime + s.UpdateTime
}

// ShardStats is one shard's slice of a round.
type ShardStats struct {
	// Shard is the shard index; Rows the number of table rows it owns.
	Shard int
	Rows  uint64
	// Request/access counts, as in RoundStats but for this shard only.
	K        int
	KUnion   int
	KSampled int
	Dummy    int
	Lost     int
	Chunks   int
	// RoundEpsilon is the shard's own parallel-composition guarantee.
	RoundEpsilon float64
	// BeginWall / FinishWall are the shard's own wall-clock times for
	// steps ①–③ and ⑦ (each shard ran concurrently with the others).
	BeginWall  time.Duration
	FinishWall time.Duration
	// Quarantined marks a shard that did not serve this round.
	Quarantined bool
}

// merge folds per-shard round statistics into the round view: counts and
// modelled device times sum; wall times take the parallel section's
// elapsed time; the round ε composes in parallel across shards (max, via
// the same accountant the chunked union uses).
func (e *Engine) merge(stats []RoundStats, beginWall, finishWall time.Duration, beginShard, finishShard []time.Duration) RoundStats {
	var m RoundStats
	var acct fdp.Accountant
	m.PerShard = make([]ShardStats, len(stats))
	for i, st := range stats {
		m.K += st.K
		m.KUnion += st.KUnion
		m.KSampled += st.KSampled
		m.Dummy += st.Dummy
		m.Lost += st.Lost
		m.CrossChunkDup += st.CrossChunkDup
		m.Chunks += st.Chunks
		m.WireBytes += st.WireBytes
		m.Saturations += st.Saturations
		m.UnionTime += st.UnionTime
		m.ReadTime += st.ReadTime
		m.ServeTime += st.ServeTime
		m.AggregateTime += st.AggregateTime
		m.UpdateTime += st.UpdateTime
		m.EvictTime += st.EvictTime
		m.PrefetchHits += st.PrefetchHits
		m.PrefetchWasted += st.PrefetchWasted
		if st.Prefetched {
			m.Prefetched = true
		}
		if st.UnionWallTime > m.UnionWallTime {
			m.UnionWallTime = st.UnionWallTime
		}
		if st.PrefetchWallTime > m.PrefetchWallTime {
			m.PrefetchWallTime = st.PrefetchWallTime
		}
		if st.EvictWallTime > m.EvictWallTime {
			m.EvictWallTime = st.EvictWallTime
		}
		if st.Chunks > 0 {
			acct.Observe(st.RoundEpsilon)
		}
		m.PerShard[i] = ShardStats{
			Shard: e.cfg.Base + i, Rows: Rows(e.cfg.NumRows, e.cfg.Shards, i),
			K: st.K, KUnion: st.KUnion, KSampled: st.KSampled,
			Dummy: st.Dummy, Lost: st.Lost, Chunks: st.Chunks,
			RoundEpsilon: st.RoundEpsilon,
			BeginWall:    beginShard[i], FinishWall: finishShard[i],
		}
	}
	m.RoundEpsilon = acct.RoundEpsilon()
	if m.Prefetched {
		// Streamed rounds: each shard reports its own blocking-read wall
		// (reads happened on background fetchers, not inside the begin
		// section). Shards blocked concurrently, so take the max.
		for _, st := range stats {
			if st.ReadWallTime > m.ReadWallTime {
				m.ReadWallTime = st.ReadWallTime
			}
		}
	} else {
		m.ReadWallTime = beginWall - m.UnionWallTime
		if m.ReadWallTime < 0 {
			m.ReadWallTime = 0
		}
	}
	m.FinishWallTime = finishWall
	return m
}
