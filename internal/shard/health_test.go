package shard

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/device"
	"repro/internal/tee"
)

// injectedErr mimics a wrapped device fault surfacing through an ORAM
// call stack, as the fault injector produces.
var injectedErr = fmt.Errorf("raworam: fetch bucket: %w", device.ErrInjected)

func requests(rows ...uint64) [][]uint64 {
	out := make([][]uint64, len(rows))
	for i, r := range rows {
		out[i] = []uint64{r}
	}
	return out
}

func TestDefaultTrigger(t *testing.T) {
	if !DefaultTrigger(injectedErr) {
		t.Error("wrapped ErrInjected not a trigger")
	}
	if !DefaultTrigger(fmt.Errorf("open bucket: %w", tee.ErrAuthFailed)) {
		t.Error("wrapped ErrAuthFailed not a trigger")
	}
	if DefaultTrigger(errors.New("logic bug")) {
		t.Error("arbitrary error treated as a trigger")
	}
	if DefaultTrigger(nil) {
		t.Error("nil error treated as a trigger")
	}
}

// TestBeginRoundQuarantinesTriggerShard: a shard whose BeginRound fails
// with a quarantine-trigger error is isolated, the round proceeds over
// the survivors, and operations routed to it get ErrShardUnavailable.
func TestBeginRoundQuarantinesTriggerShard(t *testing.T) {
	e, fakes := newFakeEngine(t, 100, 4, 2)
	fakes[1].beginErr = injectedErr
	r, err := e.BeginRound(requests(10, 30, 60, 90))
	if err != nil {
		t.Fatalf("degraded BeginRound failed: %v", err)
	}
	rep := e.Health()
	if rep.Status != StatusDegraded || rep.Quarantines != 1 {
		t.Fatalf("health = %+v, want degraded with 1 quarantine", rep)
	}
	if !rep.Shards[1].Quarantined || rep.Shards[1].Cause == "" {
		t.Errorf("shard 1 health = %+v", rep.Shards[1])
	}
	// Shard 1 owns rows [25, 50): serving one must fail typed.
	_, _, err = r.ServeEntry(30)
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("serve on quarantined shard: err = %v", err)
	}
	if !errors.Is(err, device.ErrInjected) {
		t.Errorf("unavailable error lost its cause: %v", err)
	}
	if _, err := r.SubmitGradient(30, []float32{1}, 1); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("submit on quarantined shard: err = %v", err)
	}
	// Rows on live shards keep serving.
	if _, ok, err := r.ServeEntry(10); err != nil || !ok {
		t.Fatalf("live-shard serve: ok=%v err=%v", ok, err)
	}
	st, err := r.Finish()
	if err != nil {
		t.Fatalf("degraded Finish failed: %v", err)
	}
	if st.QuarantinedShards != 1 || !st.PerShard[1].Quarantined {
		t.Errorf("stats = QuarantinedShards %d, PerShard[1].Quarantined %v",
			st.QuarantinedShards, st.PerShard[1].Quarantined)
	}
	if fakes[1].aborts == 0 {
		t.Error("quarantined shard's partition was never aborted")
	}
	// The next round simply skips the quarantined shard.
	r2, err := e.BeginRound(requests(10, 60))
	if err != nil {
		t.Fatalf("second degraded round: %v", err)
	}
	if len(fakes[1].rounds) != 0 {
		t.Error("quarantined shard began a round")
	}
	if _, err := r2.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestBeginRoundFatalErrorStillFails: non-trigger errors fail the round
// exactly as before the health layer existed.
func TestBeginRoundFatalErrorStillFails(t *testing.T) {
	e, fakes := newFakeEngine(t, 100, 2, 2)
	boom := errors.New("logic bug")
	fakes[0].beginErr = boom
	if _, err := e.BeginRound(requests(10, 90)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the fatal error", err)
	}
	if rep := e.Health(); rep.Status != StatusHealthy {
		t.Errorf("fatal error changed health to %v", rep.Status)
	}
}

// TestServeQuarantinesMidRound: a trigger error during ServeEntry
// quarantines the owning shard mid-round; Finish drops its stats and
// aborts it, and the round still completes.
func TestServeQuarantinesMidRound(t *testing.T) {
	e, fakes := newFakeEngine(t, 100, 2, 1)
	r, err := e.BeginRound(requests(10, 90))
	if err != nil {
		t.Fatal(err)
	}
	fakes[1].failOn("serve", injectedErr)
	if _, _, err := r.ServeEntry(90); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if rep := e.Health(); rep.Status != StatusDegraded {
		t.Fatalf("health = %v mid-round", rep.Status)
	}
	st, err := r.Finish()
	if err != nil {
		t.Fatalf("Finish after mid-round quarantine: %v", err)
	}
	if st.QuarantinedShards != 1 {
		t.Errorf("QuarantinedShards = %d", st.QuarantinedShards)
	}
	if fakes[1].aborts == 0 {
		t.Error("mid-round-quarantined shard not aborted at Finish")
	}
	if fr := fakes[1].rounds[0]; fr.finished {
		t.Error("quarantined shard's Finish (write-back) ran anyway")
	}
}

// TestFinishQuarantinesTriggerShard: a trigger error during a shard's
// write-back quarantines it; that shard's round updates are lost but the
// round succeeds over the survivors.
func TestFinishQuarantinesTriggerShard(t *testing.T) {
	e, fakes := newFakeEngine(t, 100, 2, 2)
	r, err := e.BeginRound(requests(10, 90))
	if err != nil {
		t.Fatal(err)
	}
	fakes[0].failOn("finish", fmt.Errorf("writeback: %w", tee.ErrAuthFailed))
	st, err := r.Finish()
	if err != nil {
		t.Fatalf("Finish = %v, want degraded success", err)
	}
	if st.QuarantinedShards != 1 || !st.PerShard[0].Quarantined {
		t.Errorf("stats = %+v", st)
	}
	if rep := e.Health(); rep.Status != StatusDegraded || !rep.Shards[0].Quarantined {
		t.Errorf("health = %+v", rep)
	}
}

// TestAllShardsQuarantinedUnavailable: with every shard quarantined the
// engine reports unavailable and refuses rounds with the typed error.
func TestAllShardsQuarantinedUnavailable(t *testing.T) {
	e, fakes := newFakeEngine(t, 100, 2, 1)
	fakes[0].beginErr = injectedErr
	fakes[1].beginErr = injectedErr
	if _, err := e.BeginRound(requests(10, 90)); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if rep := e.Health(); rep.Status != StatusUnavailable || rep.Quarantines != 2 {
		t.Fatalf("health = %+v", rep)
	}
	// The engine is NOT left in-round: a later recovery can proceed.
	if _, err := e.BeginRound(requests(10)); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("second begin: %v (want unavailable, not in-progress)", err)
	}
}

// TestRecoverRestoresQuarantinedSection: Recover replays ONLY the
// quarantined shard's checkpoint section, aborts its half-open state,
// clears the quarantine and bumps the recovery counter; healthy shards
// are untouched.
func TestRecoverRestoresQuarantinedSection(t *testing.T) {
	e, fakes := newFakeEngine(t, 100, 3, 1)
	for i, f := range fakes {
		f.state = []byte{byte('A' + i)}
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Diverge all shards' live state past the checkpoint.
	for i, f := range fakes {
		f.state = []byte{byte('X' + i)}
	}
	// Quarantine shard 1 via a begin-time trigger fault.
	fakes[1].beginErr = injectedErr
	r, err := e.BeginRound(requests(10, 50, 90))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	abortsBefore := fakes[1].aborts
	recovered, err := e.Recover(snap)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(recovered) != 1 || recovered[0] != 1 {
		t.Fatalf("recovered = %v, want [1]", recovered)
	}
	if fakes[1].aborts <= abortsBefore {
		t.Error("Recover did not abort the quarantined partition")
	}
	if string(fakes[1].state) != "B" {
		t.Errorf("shard 1 state = %q, want checkpoint section %q", fakes[1].state, "B")
	}
	// Healthy shards keep their post-checkpoint state.
	if string(fakes[0].state) != "X" || string(fakes[2].state) != "Z" {
		t.Errorf("healthy shards touched: %q %q", fakes[0].state, fakes[2].state)
	}
	rep := e.Health()
	if rep.Status != StatusHealthy || rep.Recoveries != 1 || rep.Quarantines != 1 {
		t.Fatalf("post-recovery health = %+v", rep)
	}
	// The shard serves again.
	fakes[1].beginErr = nil
	r2, err := e.BeginRound(requests(50))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := r2.ServeEntry(50); err != nil || !ok {
		t.Fatalf("recovered shard serve: ok=%v err=%v", ok, err)
	}
	if _, err := r2.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverGuards: no-op with nothing quarantined, refuses mid-round
// and on geometry mismatch.
func TestRecoverGuards(t *testing.T) {
	e, fakes := newFakeEngine(t, 100, 2, 1)
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := e.Recover(snap); err != nil || rec != nil {
		t.Fatalf("healthy Recover = %v, %v; want nil, nil", rec, err)
	}
	fakes[0].failOn("serve", injectedErr)
	r, err := e.BeginRound(requests(10, 90))
	if err != nil {
		t.Fatal(err)
	}
	_, _, _ = r.ServeEntry(10) // quarantine shard 0 mid-round
	if _, err := e.Recover(snap); !errors.Is(err, ErrRoundOpen) {
		t.Fatalf("mid-round Recover = %v, want ErrRoundOpen", err)
	}
	if _, err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	// Mismatched geometry: snapshot from a 3-shard engine.
	other, _ := newFakeEngine(t, 100, 3, 1)
	otherSnap, err := other.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(otherSnap); err == nil {
		t.Fatal("Recover accepted a snapshot with foreign geometry")
	}
	// The matching snapshot still works.
	if rec, err := e.Recover(snap); err != nil || len(rec) != 1 {
		t.Fatalf("Recover = %v, %v", rec, err)
	}
}

// TestCustomTrigger: Config.Trigger overrides the default policy.
func TestCustomTrigger(t *testing.T) {
	custom := errors.New("custom fault class")
	parts := make([]Partition, 2)
	fakes := make([]*fakePart, 2)
	for i := range parts {
		fakes[i] = &fakePart{id: i}
		parts[i] = fakes[i]
	}
	e, err := NewEngine(Config{
		Shards: 2, NumRows: 100, Workers: 1, Dummy: testDummy,
		Trigger: func(err error) bool { return errors.Is(err, custom) },
	}, parts)
	if err != nil {
		t.Fatal(err)
	}
	fakes[0].beginErr = fmt.Errorf("wrapped: %w", custom)
	if _, err := e.BeginRound(requests(10, 90)); err != nil {
		t.Fatalf("custom trigger not honored: %v", err)
	}
	if rep := e.Health(); !rep.Shards[0].Quarantined {
		t.Error("custom trigger did not quarantine")
	}
}
