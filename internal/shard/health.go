package shard

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/device"
	"repro/internal/persist"
	"repro/internal/tee"
)

// This file is the engine's failure-containment layer: per-shard health
// states (healthy → quarantined → recovered), the trigger that decides
// which errors quarantine a shard instead of failing the round, and the
// checkpoint-section recovery path. A quarantined shard's ORAM state is
// considered suspect (an injected device fault or a TEE auth-tag
// mismatch was observed through its pipeline), so the shard is isolated
// until Recover replays its section from a trusted checkpoint; the
// engine keeps serving rounds over the surviving shards meanwhile.

// ErrShardUnavailable is returned for operations routed to a quarantined
// (or never-begun) shard. It always arrives wrapped with shard index and
// cause; match it with errors.Is.
var ErrShardUnavailable = errors.New("shard: shard unavailable")

// DefaultTrigger is the quarantine policy used when Config.Trigger is
// nil: injected device faults and TEE integrity violations quarantine
// the shard; anything else (a programming error, an out-of-range
// address) fails the round loudly.
func DefaultTrigger(err error) bool {
	return errors.Is(err, device.ErrInjected) || errors.Is(err, tee.ErrAuthFailed)
}

// trigger applies the configured (or default) quarantine policy.
func (e *Engine) trigger(err error) bool {
	if err == nil {
		return false
	}
	if e.cfg.Trigger != nil {
		return e.cfg.Trigger(err)
	}
	return DefaultTrigger(err)
}

// quarantine isolates shard s, recording the first triggering cause.
func (e *Engine) quarantine(s int, cause error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quarantined[s] {
		return
	}
	e.quarantined[s] = true
	e.causes[s] = cause
	e.quarantines++
}

// isQuarantined reports shard s's current quarantine flag.
func (e *Engine) isQuarantined(s int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.quarantined[s]
}

// quarantineSnapshot copies the per-shard quarantine flags.
func (e *Engine) quarantineSnapshot() []bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]bool(nil), e.quarantined...)
}

// unavailable builds the wrapped ErrShardUnavailable for shard s,
// carrying the quarantine cause so errors.Is matches both the sentinel
// and (say) device.ErrInjected.
func (e *Engine) unavailable(s int) error {
	e.mu.Lock()
	cause := e.causes[s]
	e.mu.Unlock()
	if cause != nil {
		return fmt.Errorf("shard %d: %w: %w", e.cfg.Base+s, ErrShardUnavailable, cause)
	}
	return fmt.Errorf("shard %d: %w", e.cfg.Base+s, ErrShardUnavailable)
}

// HealthStatus is the engine-level health rollup.
type HealthStatus string

// The three health states /healthz reports.
const (
	StatusHealthy     HealthStatus = "healthy"     // every shard serving
	StatusDegraded    HealthStatus = "degraded"    // some shards quarantined
	StatusUnavailable HealthStatus = "unavailable" // no shard can serve
)

// ShardHealth is one shard's health detail.
type ShardHealth struct {
	Shard       int    `json:"shard"`
	Rows        uint64 `json:"rows"`
	Quarantined bool   `json:"quarantined"`
	// Cause is the first triggering error, empty while healthy.
	Cause string `json:"cause,omitempty"`
}

// HealthReport is the engine's health snapshot plus lifetime counters.
type HealthReport struct {
	Status HealthStatus  `json:"status"`
	Shards []ShardHealth `json:"shards"`
	// Quarantines / Recoveries count lifetime quarantine and recovery
	// events (a shard can cycle through both repeatedly).
	Quarantines uint64 `json:"quarantines"`
	Recoveries  uint64 `json:"recoveries"`
}

// Health reports per-shard quarantine state and the overall rollup.
func (e *Engine) Health() HealthReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	rep := HealthReport{
		Shards:      make([]ShardHealth, e.cfg.Shards),
		Quarantines: e.quarantines,
		Recoveries:  e.recoveries,
	}
	down := 0
	for i := range rep.Shards {
		rep.Shards[i] = ShardHealth{
			Shard:       e.cfg.Base + i,
			Rows:        Rows(e.cfg.NumRows, e.cfg.Shards, i),
			Quarantined: e.quarantined[i],
		}
		if e.causes[i] != nil {
			rep.Shards[i].Cause = e.causes[i].Error()
		}
		if e.quarantined[i] {
			down++
		}
	}
	switch down {
	case 0:
		rep.Status = StatusHealthy
	case e.cfg.Shards:
		rep.Status = StatusUnavailable
	default:
		rep.Status = StatusDegraded
	}
	return rep
}

// Recover restores every quarantined shard from its section of an engine
// snapshot (the newest durable checkpoint) and returns the indices
// recovered. Healthy shards are not touched — only the suspect state is
// replaced — so the survivors keep every round they served since the
// checkpoint, while recovered shards roll back to checkpoint time (the
// documented data-loss window; the FL runner's WAL covers whole-run
// replay, not per-shard deltas). The snapshot's geometry is verified
// before any partition is modified. Recovery requires a quiesced engine
// (no round in flight).
func (e *Engine) Recover(b []byte) ([]int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.inRound {
		return nil, ErrRoundOpen
	}
	var idx []int
	for i, q := range e.quarantined {
		if q {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil, nil
	}
	cp, err := persist.DecodeCheckpoint(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("shard: recover: %w", err)
	}
	meta, ok := cp.Get(metaSection)
	if !ok {
		return nil, fmt.Errorf("shard: recover: snapshot has no %q section", metaSection)
	}
	d := persist.NewDecoder(meta)
	version := d.U8()
	shards := int(d.U32())
	numRows := d.U64()
	base := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("shard: recover: snapshot meta: %w", err)
	}
	if version != engineSnapshotVersion {
		return nil, fmt.Errorf("shard: recover: unsupported engine snapshot version %d", version)
	}
	if shards != e.cfg.Shards || numRows != e.cfg.NumRows || base != e.cfg.Base {
		return nil, fmt.Errorf("shard: recover: snapshot geometry (%d shards, %d rows, base %d) does not match engine (%d shards, %d rows, base %d)",
			shards, numRows, base, e.cfg.Shards, e.cfg.NumRows, e.cfg.Base)
	}
	var recovered []int
	for _, i := range idx {
		blob, ok := cp.Get(SectionName(e.cfg.Base + i))
		if !ok {
			return recovered, fmt.Errorf("shard: recover: snapshot has no %q section", SectionName(e.cfg.Base+i))
		}
		e.parts[i].Abort()
		if err := e.parts[i].Restore(blob); err != nil {
			return recovered, fmt.Errorf("shard %d: recover: %w", e.cfg.Base+i, err)
		}
		e.quarantined[i] = false
		e.causes[i] = nil
		e.recoveries++
		recovered = append(recovered, e.cfg.Base+i)
	}
	return recovered, nil
}
