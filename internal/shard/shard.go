// Package shard implements the sharded ORAM engine: the embedding table
// is partitioned into S contiguous shards, each backed by its own full
// ORAM pipeline (main ORAM, position map, stash, buffer ORAM, TEE engine
// and device accounting), and the S pipelines execute one FL round's
// steps ①–③ and ⑦ concurrently on a bounded worker pool.
//
// Paper mapping: Sec 4.2 already splits each round's requests into 16K
// chunks and composes ε in parallel across them; the shards here are the
// same construction applied to *disjoint row ranges* instead of arrival
// order, which lets the independent per-shard ORAMs run concurrently.
// Within a shard the ε-FDP mechanism bounds what the shard's access
// count k reveals about its k_union; across shards the protected values
// are disjoint feature values, so by parallel composition the round
// satisfies the same per-value ε the monolithic pipeline gives (the
// round ε is the maximum, not the sum, of the per-shard chunk εs — see
// fdp.Accountant).
//
// The engine is deliberately generic: it routes rows, fans rounds out,
// and merges statistics, while the actual pipelines are supplied as
// Partition values (the fedora package wraps one sub-controller per
// shard). This keeps the package free of a dependency on the controller
// that embeds it.
//
// Key invariants:
//
//   - Routing is a pure function of (NumRows, Shards, row): contiguous
//     balanced ranges, every shard non-empty when Shards ≤ NumRows.
//   - Each shard's randomness comes from its own stream, seeded by
//     Seed(base, shard). Results are therefore bit-identical at ANY
//     worker count — scheduling cannot change which RNG serves which
//     shard (the same invariant the fl worker pool established in PR 1).
//   - Dummy (padding) requests route by (client, position), not by row,
//     so the per-shard public K is independent of where a client's REAL
//     rows live only up to the real-row histogram; docs/ARCHITECTURE.md
//     discusses the resulting leakage trade-off.
//   - At most one round is in flight per engine.
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Config parameterizes an Engine.
type Config struct {
	// Shards is the partition count S (≥ 1).
	Shards int
	// NumRows is the global embedding-table height being partitioned.
	NumRows uint64
	// Workers bounds the worker pool that executes shards concurrently
	// (0 = min(GOMAXPROCS, Shards); 1 = fully sequential).
	Workers int
	// Dummy is the sentinel request ID used as hide-count padding; it is
	// routed round-robin by (client, position) instead of by row so the
	// padding spreads deterministically across shards.
	Dummy uint64
	// Trigger classifies a shard error as quarantine-worthy (the shard is
	// isolated and the round degrades) versus fatal (the round fails as
	// before). Nil means DefaultTrigger: injected device faults and TEE
	// auth failures quarantine, everything else is fatal.
	Trigger func(error) bool
	// Base is the GLOBAL index of this engine's first shard. A standalone
	// engine leaves it 0; a cluster member hosting a contiguous slice
	// [Base, Base+Shards) of a larger decomposition sets it so checkpoint
	// sections and health reports are named by global shard index —
	// making per-shard sections portable between a single-process engine
	// and any member that owns the shard.
	Base int
}

// Partition is one shard's pipeline, as supplied by the embedding layer.
// BeginRound receives per-client request lists already translated to the
// partition's LOCAL row space.
type Partition interface {
	BeginRound(requests [][]uint64) (PartitionRound, error)
	Snapshot() ([]byte, error)
	Restore(b []byte) error
	// Abort force-closes any open or half-open round state so that a
	// subsequent Restore (or BeginRound) finds the partition quiesced. It
	// must be idempotent and must not touch the stored table data.
	Abort()
}

// PartitionRound is one shard's in-flight round. Implementations must be
// safe for concurrent use (the fedora Round is).
type PartitionRound interface {
	ServeEntry(row uint64) (entry []float32, ok bool, err error)
	SubmitGradient(row uint64, grad []float32, nSamples int) (delivered bool, err error)
	SubmitAggregate(row uint64, sum []float32, count float32) (delivered bool, err error)
	Finish() (RoundStats, error)
}

// ErrRoundInProgress is returned by BeginRound when the previous round
// was not finished.
var ErrRoundInProgress = errors.New("shard: previous round not finished")

// ErrRoundFinished is returned by round operations after Finish.
var ErrRoundFinished = errors.New("shard: round already finished")

// Engine routes rows to shards and drives the per-shard pipelines.
type Engine struct {
	cfg   Config
	parts []Partition

	mu          sync.Mutex
	inRound     bool
	quarantined []bool  // per-shard quarantine flags
	causes      []error // first quarantine-triggering error per shard
	quarantines uint64  // cumulative quarantine events
	recoveries  uint64  // cumulative shard recoveries
}

// NewEngine builds an engine over the given partitions. len(parts) must
// equal cfg.Shards, and every shard must own at least one row.
func NewEngine(cfg Config, parts []Partition) (*Engine, error) {
	if cfg.Shards < 1 {
		return nil, errors.New("shard: Shards must be at least 1")
	}
	if cfg.NumRows == 0 {
		return nil, errors.New("shard: NumRows must be positive")
	}
	if uint64(cfg.Shards) > cfg.NumRows {
		return nil, fmt.Errorf("shard: %d shards exceed %d rows (every shard must own at least one row)",
			cfg.Shards, cfg.NumRows)
	}
	if len(parts) != cfg.Shards {
		return nil, fmt.Errorf("shard: %d partitions supplied for %d shards", len(parts), cfg.Shards)
	}
	if cfg.Base < 0 {
		return nil, fmt.Errorf("shard: Base %d must be non-negative", cfg.Base)
	}
	return &Engine{
		cfg: cfg, parts: parts,
		quarantined: make([]bool, cfg.Shards),
		causes:      make([]error, cfg.Shards),
	}, nil
}

// Shards reports the partition count.
func (e *Engine) Shards() int { return e.cfg.Shards }

// Workers resolves the effective worker-pool size.
func (e *Engine) Workers() int {
	w := e.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > e.cfg.Shards {
		w = e.cfg.Shards
	}
	return w
}

// --- Routing ----------------------------------------------------------
//
// The table is split into contiguous balanced ranges: with N rows and S
// shards, the first N%S shards own ⌈N/S⌉ rows and the rest own ⌊N/S⌋,
// so every shard is non-empty whenever S ≤ N.

// Rows returns the number of rows shard i owns under an (N, S) split.
func Rows(numRows uint64, shards, i int) uint64 {
	q := numRows / uint64(shards)
	r := numRows % uint64(shards)
	if uint64(i) < r {
		return q + 1
	}
	return q
}

// Base returns the first global row of shard i under an (N, S) split.
func Base(numRows uint64, shards, i int) uint64 {
	q := numRows / uint64(shards)
	r := numRows % uint64(shards)
	ui := uint64(i)
	if ui < r {
		return ui * (q + 1)
	}
	return r*(q+1) + (ui-r)*q
}

// ShardOf returns the shard owning a global row under an (N, S) split.
func ShardOf(numRows uint64, shards int, row uint64) int {
	q := numRows / uint64(shards)
	r := numRows % uint64(shards)
	big := r * (q + 1) // rows held by the ⌈N/S⌉-sized shards
	if row < big {
		return int(row / (q + 1))
	}
	return int(r + (row-big)/q)
}

// Seed derives shard i's deterministic RNG seed from the run's base
// seed (splitmix64 over base + i·φ so neighbouring shards decorrelate).
func Seed(base int64, shard int) int64 {
	x := uint64(base) + 0x9E3779B97F4A7C15*uint64(shard+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// ShardOf returns the shard owning a global row.
func (e *Engine) ShardOf(row uint64) int {
	return ShardOf(e.cfg.NumRows, e.cfg.Shards, row)
}

// locate translates a global row to (shard, local row).
func (e *Engine) locate(row uint64) (int, uint64) {
	s := e.ShardOf(row)
	return s, row - Base(e.cfg.NumRows, e.cfg.Shards, s)
}

// route splits per-client request lists into per-shard per-client lists
// of LOCAL rows. Dummy padding requests route by (client, position).
func (e *Engine) route(requests [][]uint64) ([][][]uint64, error) {
	S := e.cfg.Shards
	perShard := make([][][]uint64, S)
	for s := 0; s < S; s++ {
		perShard[s] = make([][]uint64, len(requests))
	}
	for ci, reqs := range requests {
		for j, row := range reqs {
			var s int
			var local uint64
			if row == e.cfg.Dummy {
				s, local = (ci+j)%S, e.cfg.Dummy
			} else {
				if row >= e.cfg.NumRows {
					return nil, fmt.Errorf("shard: client %d requests row %d out of range %d",
						ci, row, e.cfg.NumRows)
				}
				s, local = e.locate(row)
			}
			perShard[s][ci] = append(perShard[s][ci], local)
		}
	}
	return perShard, nil
}

// forEach runs fn(i) for every shard index over the bounded worker pool
// and blocks until all complete.
func (e *Engine) forEach(fn func(i int)) {
	workers := e.Workers()
	if workers == 1 {
		for i := 0; i < e.cfg.Shards; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < e.cfg.Shards; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// firstError returns the lowest-shard-index error, for deterministic
// error reporting regardless of scheduling.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// endRound clears the in-flight flag.
func (e *Engine) endRound() {
	e.mu.Lock()
	e.inRound = false
	e.mu.Unlock()
}

// Abort force-quiesces the engine: any in-flight round is abandoned and
// every partition's half-open round state is discarded. It exists for
// the orphaned-round case a coordinator fence creates — the member's
// round will never see Finish, so Snapshot/Restore would report
// ErrRoundOpen forever without a forced close. Stored table data is not
// touched. Callers must ensure no round operations are still in flight.
func (e *Engine) Abort() {
	e.mu.Lock()
	e.inRound = false
	e.mu.Unlock()
	for _, p := range e.parts {
		p.Abort()
	}
}

// Round is an in-flight sharded round: one PartitionRound per shard plus
// the wall-clock bookkeeping needed to attribute phase time. ServeEntry
// and SubmitGradient are safe for concurrent use and, unlike the
// monolithic pipeline, proceed in parallel when the rows live on
// different shards (each shard serializes only its own pipeline).
type Round struct {
	e         *Engine
	subs      []PartitionRound
	beginWall time.Duration   // wall clock of the parallel ①–③ section
	shardWall []time.Duration // per-shard BeginRound wall clock

	mu   sync.RWMutex
	done bool
}

// BeginRound routes the requests and runs every shard's steps ①–③
// concurrently. Quarantined shards are skipped; a shard that fails with
// a quarantine-trigger error (see Config.Trigger) is quarantined and the
// round proceeds degraded over the survivors, as long as at least one
// shard is live. On a fatal (non-trigger) failure the shards that did
// begin are closed (best effort) and the lowest-indexed error is
// returned.
func (e *Engine) BeginRound(requests [][]uint64) (*Round, error) {
	e.mu.Lock()
	if e.inRound {
		e.mu.Unlock()
		return nil, ErrRoundInProgress
	}
	e.inRound = true
	quar := append([]bool(nil), e.quarantined...)
	e.mu.Unlock()

	perShard, err := e.route(requests)
	if err != nil {
		e.endRound()
		return nil, err
	}
	S := e.cfg.Shards
	r := &Round{
		e:         e,
		subs:      make([]PartitionRound, S),
		shardWall: make([]time.Duration, S),
	}
	errs := make([]error, S)
	wallStart := time.Now()
	e.forEach(func(i int) {
		if quar[i] {
			return
		}
		start := time.Now()
		sub, err := e.parts[i].BeginRound(perShard[i])
		r.shardWall[i] = time.Since(start)
		if err != nil {
			errs[i] = err
			return
		}
		r.subs[i] = sub
	})
	r.beginWall = time.Since(wallStart)
	live := 0
	for i := range errs {
		switch {
		case errs[i] == nil:
			if r.subs[i] != nil {
				live++
			}
		case e.trigger(errs[i]):
			// Degrade: isolate the shard, keep the round alive. Its
			// half-open state is cleaned up by Finish/Recover via Abort.
			e.quarantine(i, errs[i])
			errs[i] = nil
		}
	}
	if err := firstError(errs); err != nil {
		e.forEach(func(i int) {
			if r.subs[i] != nil {
				_, _ = r.subs[i].Finish()
			}
		})
		e.endRound()
		return nil, err
	}
	if live == 0 {
		e.endRound()
		return nil, fmt.Errorf("shard: no live shards to begin a round: %w", ErrShardUnavailable)
	}
	return r, nil
}

// ServeEntry serves a client download (step ④), routed to the owning
// shard. ok is false for rows the shard's ε-FDP mechanism sacrificed.
// Rows owned by a quarantined shard return ErrShardUnavailable (wrapped
// with the quarantine cause) so the trainer can skip or resample them; a
// quarantine-trigger error quarantines the shard mid-round.
func (r *Round) ServeEntry(row uint64) ([]float32, bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.done {
		return nil, false, ErrRoundFinished
	}
	if row >= r.e.cfg.NumRows {
		return nil, false, fmt.Errorf("shard: row %d out of range %d", row, r.e.cfg.NumRows)
	}
	s, local := r.e.locate(row)
	sub := r.subs[s]
	if sub == nil || r.e.isQuarantined(s) {
		return nil, false, r.e.unavailable(s)
	}
	entry, ok, err := sub.ServeEntry(local)
	if err != nil {
		if r.e.trigger(err) {
			r.e.quarantine(s, err)
		}
		if r.e.isQuarantined(s) {
			return nil, false, r.e.unavailable(s)
		}
	}
	return entry, ok, err
}

// SubmitGradient folds a client gradient into the owning shard's
// aggregate (step ⑥). Gradients for a quarantined shard's rows return
// ErrShardUnavailable.
func (r *Round) SubmitGradient(row uint64, grad []float32, nSamples int) (bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.done {
		return false, ErrRoundFinished
	}
	if row >= r.e.cfg.NumRows {
		return false, fmt.Errorf("shard: row %d out of range %d", row, r.e.cfg.NumRows)
	}
	s, local := r.e.locate(row)
	sub := r.subs[s]
	if sub == nil || r.e.isQuarantined(s) {
		return false, r.e.unavailable(s)
	}
	delivered, err := sub.SubmitGradient(local, grad, nSamples)
	if err != nil {
		if r.e.trigger(err) {
			r.e.quarantine(s, err)
		}
		if r.e.isQuarantined(s) {
			return false, r.e.unavailable(s)
		}
	}
	return delivered, err
}

// SubmitAggregate folds an already-aggregated multi-client sum (the
// upload plane's unmasked per-row output: Σ n_c·Δθ and Σ n_c) into the
// owning shard, bypassing the aggregator's per-client pre-weighting.
// Rows of a quarantined shard return ErrShardUnavailable.
func (r *Round) SubmitAggregate(row uint64, sum []float32, count float32) (bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.done {
		return false, ErrRoundFinished
	}
	if row >= r.e.cfg.NumRows {
		return false, fmt.Errorf("shard: row %d out of range %d", row, r.e.cfg.NumRows)
	}
	s, local := r.e.locate(row)
	sub := r.subs[s]
	if sub == nil || r.e.isQuarantined(s) {
		return false, r.e.unavailable(s)
	}
	delivered, err := sub.SubmitAggregate(local, sum, count)
	if err != nil {
		if r.e.trigger(err) {
			r.e.quarantine(s, err)
		}
		if r.e.isQuarantined(s) {
			return false, r.e.unavailable(s)
		}
	}
	return delivered, err
}

// Finish runs every live shard's write-back (step ⑦) concurrently,
// merges the per-shard statistics (sums for counts and modelled device
// time, parallel-section wall clock for the wall-time phases, parallel ε
// composition for the round guarantee) and closes the round. Quarantined
// shards are skipped and their half-open rounds aborted — this round's
// updates to those shards are lost, which is the documented blast radius
// of a quarantine (recovery restores the shard from the newest
// checkpoint). A quarantine-trigger error during a shard's write-back
// quarantines it the same way; the round still succeeds over the
// survivors.
func (r *Round) Finish() (RoundStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return RoundStats{}, ErrRoundFinished
	}
	S := r.e.cfg.Shards
	stats := make([]RoundStats, S)
	finishShard := make([]time.Duration, S)
	errs := make([]error, S)
	survived := make([]bool, S)
	wallStart := time.Now()
	r.e.forEach(func(i int) {
		if r.subs[i] == nil || r.e.isQuarantined(i) {
			return
		}
		start := time.Now()
		st, err := r.subs[i].Finish()
		finishShard[i] = time.Since(start)
		if err != nil {
			if r.e.trigger(err) {
				r.e.quarantine(i, err)
				return
			}
			errs[i] = err
			return
		}
		stats[i], survived[i] = st, true
	})
	finishWall := time.Since(wallStart)
	r.done = true
	r.e.endRound()
	// Abort the half-open rounds of every quarantined shard so a later
	// Recover (or snapshot of the survivors) finds them quiesced.
	quar := r.e.quarantineSnapshot()
	for i, q := range quar {
		if q {
			r.e.parts[i].Abort()
		}
	}
	if err := firstError(errs); err != nil {
		return RoundStats{}, err
	}
	live := 0
	for _, ok := range survived {
		if ok {
			live++
		}
	}
	if live == 0 {
		return RoundStats{}, fmt.Errorf("shard: round lost on every shard: %w", ErrShardUnavailable)
	}
	m := r.e.merge(stats, r.beginWall, finishWall, r.shardWall, finishShard)
	for i, q := range quar {
		if q {
			m.PerShard[i].Quarantined = true
			m.QuarantinedShards++
		}
	}
	return m, nil
}
