//go:build linux

package storage

import "syscall"

// directSupported reports whether the platform has an O_DIRECT flag at
// all; individual filesystems may still reject it at open time (tmpfs
// does), in which case OpenFile falls back to buffered I/O.
const directSupported = true

// directFlag returns the open(2) flag requesting direct I/O. Under
// O_DIRECT the kernel bypasses the page cache, which is what makes the
// measured latencies device latencies; it requires file offsets, I/O
// lengths and user-buffer addresses aligned to the logical block size —
// the aligned-span path in file.go guarantees all three at pageAlign.
func directFlag() int { return syscall.O_DIRECT }
