// Package storage is the pluggable seam between the ORAM stacks and the
// bytes underneath them. Every ORAM in this repository talks to a
// device.Device; this package decides what that device really is:
//
//   - KindSim — the discrete-event simulator (device.Sim), which moves
//     real bytes through host memory and returns *modelled* durations
//     from the device profile. This is the paper's methodology: its
//     results are ratios over access counts and sizes.
//   - KindFile — a real file on a real filesystem (File, this package):
//     4 KB-page-aligned preads/pwrites against a preallocated backing
//     file, O_DIRECT where the platform and filesystem support it, with
//     a configurable fsync policy and a bounded dirty-page window. Every
//     operation returns its *measured* wall-clock duration, so the
//     latency numbers that flow into RoundStats come from actual
//     hardware — the measurement the paper itself could not make.
//
// The two backends are interchangeable behind device.Storage: contents
// are bit-faithful either way (a read returns exactly what was last
// written), they share one snapshot wire format (a checkpoint taken
// over the simulator restores onto a file-backed device and back), and
// the fault injector (internal/fault) wraps either one because it
// interposes on the device.Device interface, above this seam.
//
// Key invariants: backend choice never changes stored bytes — an FL run
// lands on a bit-identical model fingerprint on either backend at equal
// seed/workers/shards; only durations and the durability of the backing
// bytes differ. The backing file is working state, not the durable copy:
// crash recovery restores devices from the checkpoint/WAL layer
// (internal/persist), so OpenFile always starts from a zeroed file.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/device"
)

// Kind selects the storage backend realizing a device.
type Kind int

const (
	// KindSim is the discrete-event simulator (device.Sim) — the default.
	KindSim Kind = iota
	// KindFile is the real-I/O file-backed device (File).
	KindFile
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSim:
		return "sim"
	case KindFile:
		return "file"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind parses the CLI spelling of a backend ("sim" or "file").
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "sim":
		return KindSim, nil
	case "file":
		return KindFile, nil
	default:
		return 0, fmt.Errorf("storage: unknown backend %q (want sim or file)", s)
	}
}

// FsyncPolicy bounds how much written data may sit in the page cache —
// the durability window of the backing file. It only matters for
// KindFile (the simulator has no page cache to flush).
type FsyncPolicy int

const (
	// FsyncBatched (default) counts pages written since the last flush
	// and forces an fsync when the dirty window exceeds MaxDirtyPages —
	// the bounded write-queue: at most MaxDirtyPages · 4 KB of ORAM
	// writes can be lost to a host crash, and the flush cost lands on
	// (and is measured in) the write that trips the bound.
	FsyncBatched FsyncPolicy = iota
	// FsyncAlways fsyncs after every write, so each WriteAt's measured
	// duration includes full durability — the honest per-op cost of
	// write-through, and the slowest policy by far.
	FsyncAlways
	// FsyncNever leaves flushing entirely to the OS (and Close). Fastest;
	// the dirty window is unbounded.
	FsyncNever
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatched:
		return "batched"
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("fsync(%d)", int(p))
	}
}

// DefaultMaxDirtyPages is the default bounded write-queue depth: 4096
// un-fsynced 4 KB pages (16 MB) before a flush is forced.
const DefaultMaxDirtyPages = 4096

// Spec selects and parameterizes the backend for every device a
// controller provisions. The zero value is the simulator, which keeps
// existing construction paths unchanged.
type Spec struct {
	// Kind selects the backend.
	Kind Kind
	// Dir is the directory holding backing files (KindFile). Required for
	// KindFile; ParseSpec falls back to a fresh temp directory.
	Dir string
	// Direct requests O_DIRECT on the backing file, bypassing the page
	// cache so measured latencies come from the device, not DRAM. When
	// the platform or filesystem does not support it (tmpfs does not),
	// the device silently falls back to buffered I/O and reports
	// Direct=false in its Report.
	Direct bool
	// Fsync is the durability policy (default FsyncBatched).
	Fsync FsyncPolicy
	// MaxDirtyPages bounds the un-fsynced write window under FsyncBatched
	// (0 = DefaultMaxDirtyPages).
	MaxDirtyPages int
	// Prefix distinguishes backing files when several controllers share
	// one Dir; the sharded controller sets "shard<i>" so each shard owns
	// one backing file per device.
	Prefix string
}

// ParseSpec builds a Spec from the CLI flag values (-storage,
// -storage-dir, -storage-direct). An empty dir with the file backend
// resolves to a fresh temporary directory so smoke runs need no setup.
func ParseSpec(kind, dir string, direct bool) (Spec, error) {
	k, err := ParseKind(kind)
	if err != nil {
		return Spec{}, err
	}
	if k == KindFile && dir == "" {
		dir, err = os.MkdirTemp("", "fedora-storage-")
		if err != nil {
			return Spec{}, fmt.Errorf("storage: create temp dir: %w", err)
		}
	}
	return Spec{Kind: k, Dir: dir, Direct: direct}, nil
}

// Open provisions one device under the seam: the simulator for KindSim,
// a file-backed device (one backing file, named after the device and the
// Spec prefix) for KindFile. name is the controller's device name
// ("ssd", or "shard3/ssd" via Prefix when sharded).
func Open(name string, p device.Profile, capacity uint64, spec Spec) (device.Storage, error) {
	switch spec.Kind {
	case KindSim:
		return device.NewSim(p, capacity), nil
	case KindFile:
		if spec.Dir == "" {
			return nil, fmt.Errorf("storage: file backend needs a directory (Spec.Dir) for device %q", name)
		}
		qual := name
		if spec.Prefix != "" {
			// Match the fault injector's per-shard naming ("shard3/ssd")
			// so reports and fault plans identify devices the same way.
			qual = spec.Prefix + "/" + name
		}
		return OpenFile(qual, filepath.Join(spec.Dir, backingFileName(spec.Prefix, name)), p, capacity, spec)
	default:
		return nil, fmt.Errorf("storage: unknown backend %v", spec.Kind)
	}
}

// backingFileName maps a (prefix, device name) pair to a filesystem-safe
// file name: "ssd" -> "ssd.dev", prefix "shard3" -> "shard3-ssd.dev".
func backingFileName(prefix, name string) string {
	full := name
	if prefix != "" {
		full = prefix + "-" + name
	}
	full = strings.ReplaceAll(full, "/", "-")
	return full + ".dev"
}
