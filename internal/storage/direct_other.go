//go:build !linux

package storage

// directSupported: no portable O_DIRECT outside Linux (darwin spells it
// fcntl(F_NOCACHE), windows has FILE_FLAG_NO_BUFFERING — neither maps
// onto the open-flag path). Requests for direct I/O silently fall back
// to buffered; Report.Direct exposes what actually happened.
const directSupported = false

func directFlag() int { return 0 }
