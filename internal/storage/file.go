package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/device"
)

// pageAlign is the alignment unit for file I/O: offsets, lengths and
// (under O_DIRECT) buffer addresses are aligned to it. 4096 matches NVMe
// logical blocks, the ORAM bucket page, and the snapshot page.
const pageAlign = 4096

// ErrClosed is returned by every operation on a closed File.
var ErrClosed = errors.New("storage: device is closed")

// File is a device.Storage backed by a real file: page-aligned preads
// and pwrites against a preallocated (sparse) backing file, O_DIRECT
// when requested and supported, an fsync policy bounding the dirty-page
// window, and measured per-op latency histograms.
//
// Timing semantics differ from the simulator on purpose: ReadAt/WriteAt
// return the MEASURED wall-clock duration of the real I/O (including
// any fsync the policy charges to the op), while Charge/ChargeN — which
// move no data — still return modelled durations from the profile, so
// phantom-mode accounting stays meaningful. Stats.BusyTime therefore
// accumulates real time on the data path.
//
// Concurrency matches device.Sim: a mutex serializes operations, so a
// File is safe for concurrent use even though the FEDORA controller is
// logically single-writer.
type File struct {
	mu       sync.Mutex
	f        *os.File
	name     string // controller device name ("ssd", "shard3/ssd")
	path     string
	profile  device.Profile
	capacity uint64
	spec     Spec
	direct   bool // O_DIRECT actually active (request may fall back)
	closed   bool

	stats   device.Stats
	written map[uint64]struct{} // snapshot pages ever written (for Snapshot)
	dirty   int                 // page writes since the last fsync
	fsyncs  uint64

	readHist, writeHist hist

	scratch []byte // page-aligned reusable buffer for the aligned-span path
}

// OpenFile creates (or truncates) the backing file at path and returns a
// file-backed device of the given profile and capacity. The file starts
// zeroed regardless of prior contents: the backing file is working
// state — recovery repopulates it through Restore from the checkpoint
// layer, exactly as a fresh simulator would be. The file is preallocated
// sparsely (Truncate), so disk is consumed only for pages written.
func OpenFile(name, path string, p device.Profile, capacity uint64, spec Spec) (*File, error) {
	if p.PageSize <= 0 {
		return nil, errors.New("storage: profile PageSize must be positive")
	}
	if spec.MaxDirtyPages == 0 {
		spec.MaxDirtyPages = DefaultMaxDirtyPages
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var (
		f      *os.File
		err    error
		direct bool
	)
	if spec.Direct && directSupported {
		// Try O_DIRECT first; filesystems without it (tmpfs) reject the
		// open with EINVAL, and we fall back to buffered I/O below.
		f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE|directFlag(), 0o644)
		direct = err == nil
	}
	if f == nil {
		f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, fmt.Errorf("storage: open %s: %w", path, err)
		}
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncate %s: %w", path, err)
	}
	if err := f.Truncate(int64(alignUp(capacity))); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: preallocate %s to %d bytes: %w", path, capacity, err)
	}
	return &File{
		f: f, name: name, path: path, profile: p, capacity: capacity,
		spec: spec, direct: direct, written: make(map[uint64]struct{}),
	}, nil
}

// alignUp rounds n up to a multiple of pageAlign.
func alignUp(n uint64) uint64 { return (n + pageAlign - 1) / pageAlign * pageAlign }

// Capacity implements Device.
func (fd *File) Capacity() uint64 { return fd.capacity }

// PageSize implements Device.
func (fd *File) PageSize() int { return fd.profile.PageSize }

// Profile implements Storage.
func (fd *File) Profile() device.Profile { return fd.profile }

// Name returns the controller device name this File was opened under.
func (fd *File) Name() string { return fd.name }

// Path returns the backing file path.
func (fd *File) Path() string { return fd.path }

// Direct reports whether O_DIRECT is actually active.
func (fd *File) Direct() bool {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.direct
}

func (fd *File) checkRange(addr uint64, n int) error {
	if fd.closed {
		return ErrClosed
	}
	if n < 0 {
		return fmt.Errorf("storage %s: negative length %d", fd.name, n)
	}
	if addr+uint64(n) > fd.capacity {
		return fmt.Errorf("storage %s: access [%d, %d) exceeds capacity %d",
			fd.name, addr, addr+uint64(n), fd.capacity)
	}
	return nil
}

// span returns the page-aligned byte range covering [addr, addr+n).
func span(addr uint64, n int) (start uint64, length int) {
	start = addr / pageAlign * pageAlign
	end := alignUp(addr + uint64(n))
	return start, int(end - start)
}

// alignedScratch returns a page-aligned buffer of at least n bytes
// (required by O_DIRECT, harmless otherwise). Caller holds fd.mu.
func (fd *File) alignedScratch(n int) []byte {
	if cap(fd.scratch) < n+pageAlign {
		fd.scratch = make([]byte, n+2*pageAlign)
	}
	b := fd.scratch[:cap(fd.scratch)]
	off := int(bufAddr(b) & (pageAlign - 1))
	if off != 0 {
		b = b[pageAlign-off:]
	}
	return b[:n]
}

// pread fills p from the aligned span covering [addr, addr+len(p)).
// Caller holds fd.mu. A read past the file's real end (e.g. the backing
// file was truncated externally) is a short read and fails loudly.
func (fd *File) pread(addr uint64, p []byte) error {
	if len(p) == 0 {
		return nil
	}
	start, length := span(addr, len(p))
	buf := fd.alignedScratch(length)
	if n, err := fd.f.ReadAt(buf, int64(start)); n != length {
		return fmt.Errorf("storage %s: short read [%d,%d): got %d of %d bytes: %w",
			fd.name, start, start+uint64(length), n, length, err)
	}
	copy(p, buf[addr-start:])
	return nil
}

// pwrite stores p at addr via the aligned span, read-modify-writing the
// edge pages when the access is not page-aligned. Returns the number of
// pageAlign pages written. Caller holds fd.mu.
func (fd *File) pwrite(addr uint64, p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	start, length := span(addr, len(p))
	buf := fd.alignedScratch(length)
	aligned := addr == start && length == len(p)
	if !aligned {
		// RMW: fetch the covering span so the bytes around p survive.
		if n, err := fd.f.ReadAt(buf, int64(start)); n != length {
			return 0, fmt.Errorf("storage %s: rmw read [%d,%d): got %d of %d bytes: %w",
				fd.name, start, start+uint64(length), n, length, err)
		}
	}
	copy(buf[addr-start:], p)
	if n, err := fd.f.WriteAt(buf, int64(start)); n != length {
		return 0, fmt.Errorf("storage %s: short write [%d,%d): wrote %d of %d bytes: %w",
			fd.name, start, start+uint64(length), n, length, err)
	}
	pages := length / pageAlign
	for pg := start / pageAlign; pg < start/pageAlign+uint64(pages); pg++ {
		fd.written[pg] = struct{}{}
	}
	return pages, nil
}

// afterWrite applies the fsync policy; the flush cost (if any) belongs
// to the triggering write and is included in its measured duration.
// Caller holds fd.mu.
func (fd *File) afterWrite(pages int) error {
	switch fd.spec.Fsync {
	case FsyncAlways:
		return fd.syncLocked()
	case FsyncBatched:
		fd.dirty += pages
		if fd.dirty >= fd.spec.MaxDirtyPages {
			return fd.syncLocked()
		}
	}
	return nil
}

func (fd *File) syncLocked() error {
	if err := fd.f.Sync(); err != nil {
		return fmt.Errorf("storage %s: fsync: %w", fd.name, err)
	}
	fd.fsyncs++
	fd.dirty = 0
	return nil
}

// Sync flushes the backing file (a durability barrier callers may issue
// at round or checkpoint boundaries regardless of policy).
func (fd *File) Sync() error {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.closed {
		return ErrClosed
	}
	return fd.syncLocked()
}

// ReadAt implements Device: a real pread, returning measured duration.
func (fd *File) ReadAt(addr uint64, p []byte) (time.Duration, error) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if err := fd.checkRange(addr, len(p)); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := fd.pread(addr, p); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	n := fd.profile.RoundUp(len(p))
	fd.stats.Reads++
	fd.stats.BytesRead += uint64(n)
	fd.stats.BusyTime += elapsed
	fd.readHist.observe(elapsed)
	return elapsed, nil
}

// WriteAt implements Device: a real pwrite (plus any policy fsync),
// returning measured duration.
func (fd *File) WriteAt(addr uint64, p []byte) (time.Duration, error) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if err := fd.checkRange(addr, len(p)); err != nil {
		return 0, err
	}
	start := time.Now()
	pages, err := fd.pwrite(addr, p)
	if err != nil {
		return 0, err
	}
	if err := fd.afterWrite(pages); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	n := fd.profile.RoundUp(len(p))
	fd.stats.Writes++
	fd.stats.BytesWritten += uint64(n)
	fd.stats.BusyTime += elapsed
	fd.writeHist.observe(elapsed)
	return elapsed, nil
}

// PeekAt implements Device: a read that bypasses Stats accounting (the
// ORAMs account via Charge and move data via Peek/Poke, keeping phantom
// and functional traffic identical). The real I/O is still measured into
// the latency histogram — on the file backend this IS the data path.
func (fd *File) PeekAt(addr uint64, p []byte) error {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if err := fd.checkRange(addr, len(p)); err != nil {
		return err
	}
	start := time.Now()
	if err := fd.pread(addr, p); err != nil {
		return err
	}
	fd.readHist.observe(time.Since(start))
	return nil
}

// PokeAt implements Device: a write that bypasses Stats accounting but
// still obeys the fsync policy and feeds the latency histogram.
func (fd *File) PokeAt(addr uint64, p []byte) error {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if err := fd.checkRange(addr, len(p)); err != nil {
		return err
	}
	start := time.Now()
	pages, err := fd.pwrite(addr, p)
	if err != nil {
		return err
	}
	if err := fd.afterWrite(pages); err != nil {
		return err
	}
	fd.writeHist.observe(time.Since(start))
	return nil
}

// Charge implements Device: accounting-only operations move no data, so
// the duration is modelled from the profile exactly as the simulator
// models it (phantom-mode runs over the file backend stay meaningful).
func (fd *File) Charge(op device.Op, addr uint64, n int) time.Duration {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.account(op, n, 1)
}

// ChargeN implements Device.
func (fd *File) ChargeN(op device.Op, n, count int) time.Duration {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if count <= 0 {
		return 0
	}
	return fd.account(op, n, count)
}

// account applies `count` modelled accesses of n bytes. Caller holds fd.mu.
func (fd *File) account(op device.Op, n, count int) time.Duration {
	n = fd.profile.RoundUp(n)
	total := fd.profile.OpTime(op, n) * time.Duration(count)
	if op == device.OpRead {
		fd.stats.Reads += uint64(count)
		fd.stats.BytesRead += uint64(n) * uint64(count)
	} else {
		fd.stats.Writes += uint64(count)
		fd.stats.BytesWritten += uint64(n) * uint64(count)
	}
	fd.stats.BusyTime += total
	return total
}

// Stats implements Device.
func (fd *File) Stats() device.Stats {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.stats
}

// ResetStats implements Device (latency histograms reset too).
func (fd *File) ResetStats() {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	fd.stats = device.Stats{}
	fd.readHist = hist{}
	fd.writeHist = hist{}
}

// WearBytes implements Storage, mirroring the simulator's wear model.
func (fd *File) WearBytes() uint64 {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	waf := fd.profile.WriteAmplification
	if waf <= 0 {
		waf = 1
	}
	return uint64(float64(fd.stats.BytesWritten) * waf)
}

// Report summarizes the device's real-I/O telemetry.
func (fd *File) Report() Report {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return Report{
		Name: fd.name, Backend: KindFile.String(), Path: fd.path,
		Direct: fd.direct, Fsyncs: fd.fsyncs, DirtyPages: fd.dirty,
		Read: fd.readHist.summary(), Write: fd.writeHist.summary(),
	}
}

// Snapshot implements Storage in the shared device-snapshot wire format:
// it reads back every page ever written and serializes the non-zero
// ones, so a file-backend checkpoint restores onto a simulator and vice
// versa. Snapshot I/O is unaccounted (checkpointing is harness work, not
// modelled device traffic — matching the simulator's semantics).
func (fd *File) Snapshot() ([]byte, error) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.closed {
		return nil, ErrClosed
	}
	pages := make(map[uint64][]byte, len(fd.written))
	for pg := range fd.written {
		buf := make([]byte, device.SnapshotPageSize)
		if err := fd.pread(pg*device.SnapshotPageSize, buf); err != nil {
			return nil, err
		}
		pages[pg] = buf
	}
	return device.EncodeSnapshot(fd.profile.Name, fd.capacity, fd.stats, pages), nil
}

// Restore implements Storage: the backing file is zeroed (re-sparsified)
// and the snapshot's pages written back, then flushed.
func (fd *File) Restore(b []byte) error {
	name, capacity, st, pages, err := device.DecodeSnapshot(b)
	if err != nil {
		return fmt.Errorf("storage %s: %w", fd.name, err)
	}

	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.closed {
		return ErrClosed
	}
	if name != fd.profile.Name {
		return fmt.Errorf("storage %s: snapshot is for profile %q, this device is %q", fd.name, name, fd.profile.Name)
	}
	if capacity != fd.capacity {
		return fmt.Errorf("storage %s: snapshot capacity %d != device capacity %d",
			fd.name, capacity, fd.capacity)
	}
	if err := fd.f.Truncate(0); err != nil {
		return fmt.Errorf("storage %s: restore truncate: %w", fd.name, err)
	}
	if err := fd.f.Truncate(int64(alignUp(fd.capacity))); err != nil {
		return fmt.Errorf("storage %s: restore preallocate: %w", fd.name, err)
	}
	fd.written = make(map[uint64]struct{}, len(pages))
	for pg, page := range pages {
		if _, err := fd.pwrite(pg*device.SnapshotPageSize, page); err != nil {
			return err
		}
	}
	if err := fd.syncLocked(); err != nil {
		return err
	}
	fd.stats = st
	fd.dirty = 0
	return nil
}

// Close implements Storage: flushes (unless FsyncNever) and closes the
// backing file. The file is left on disk for inspection; it holds
// working state only and is re-zeroed on the next OpenFile.
func (fd *File) Close() error {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.closed {
		return nil
	}
	fd.closed = true
	var syncErr error
	if fd.spec.Fsync != FsyncNever {
		syncErr = fd.f.Sync()
	}
	if err := fd.f.Close(); err != nil {
		return fmt.Errorf("storage %s: close: %w", fd.name, err)
	}
	if syncErr != nil {
		return fmt.Errorf("storage %s: close fsync: %w", fd.name, syncErr)
	}
	return nil
}
