package storage

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

// hist is a log2-bucketed latency histogram: observation d lands in
// bucket ⌈log2(d in ns)⌉, so 64 buckets cover 1 ns to ~584 years with
// ≤2× relative error per bucket — plenty for storage latencies, at a
// fixed 0.5 KB of memory and O(1) record cost on the I/O hot path.
// Callers synchronize access (the File mutex covers it).
type hist struct {
	counts [64]uint64
	total  uint64
	sum    time.Duration
	max    time.Duration
}

func (h *hist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bits.Len64(uint64(d))&63]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// percentile returns an upper bound for the q-th percentile (0 < q ≤ 1):
// the upper edge of the bucket holding the q·total-th observation.
func (h *hist) percentile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			edge := time.Duration(1) << uint(i)
			if edge <= 0 || edge > h.max {
				edge = h.max // clamp: the top bucket's edge overstates (or overflows)
			}
			return edge
		}
	}
	return h.max
}

// LatencySummary condenses one operation direction's measured latencies.
type LatencySummary struct {
	Count         uint64
	Mean          time.Duration
	P50, P95, P99 time.Duration
	Max           time.Duration
}

func (h *hist) summary() LatencySummary {
	s := LatencySummary{
		Count: h.total,
		P50:   h.percentile(0.50),
		P95:   h.percentile(0.95),
		P99:   h.percentile(0.99),
		Max:   h.max,
	}
	if h.total > 0 {
		s.Mean = h.sum / time.Duration(h.total)
	}
	return s
}

// Report is one device's real-I/O telemetry, surfaced through
// fedora.Controller.StorageReports, the /metrics endpoint, and
// fedora-bench's storage comparison.
type Report struct {
	// Name is the controller's device name ("ssd", "shard3/ssd").
	Name string
	// Backend is the Kind spelling ("sim" or "file").
	Backend string
	// Path is the backing file (file backend only).
	Path string
	// Direct reports whether O_DIRECT is actually active (a request can
	// fall back on filesystems that reject it, e.g. tmpfs).
	Direct bool
	// Fsyncs counts completed fsyncs; DirtyPages is the current
	// un-fsynced write window.
	Fsyncs     uint64
	DirtyPages int
	// Read / Write summarize the measured per-op latencies.
	Read, Write LatencySummary
}

// String renders the report for CLI output, one block per device.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: backend=%s direct=%v fsyncs=%d dirty-pages=%d path=%s\n",
		r.Name, r.Backend, r.Direct, r.Fsyncs, r.DirtyPages, r.Path)
	fmt.Fprintf(&b, "  read : %s\n", r.Read)
	fmt.Fprintf(&b, "  write: %s\n", r.Write)
	return b.String()
}

// String renders one direction's latency summary.
func (s LatencySummary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond/10), s.P50, s.P95, s.P99, s.Max)
}
