package storage

import "unsafe"

// bufAddr returns the address of b's first byte, used to page-align the
// scratch buffer for O_DIRECT (which requires aligned user memory, not
// just aligned file offsets).
func bufAddr(b []byte) uintptr {
	if len(b) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&b[0]))
}
