package storage

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/device"
)

// newTestFile opens a file-backed device in a test temp dir.
func newTestFile(t *testing.T, capacity uint64, spec Spec) *File {
	t.Helper()
	fd, err := OpenFile("ssd", filepath.Join(t.TempDir(), "ssd.dev"), device.PM9A1SSD, capacity, spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fd.Close() })
	return fd
}

// TestFileDeviceMatchesSim drives the same random operation sequence
// through the simulator and the file backend and demands bit-identical
// contents at every read — the seam's core invariant.
func TestFileDeviceMatchesSim(t *testing.T) {
	const capacity = 1 << 20
	sim := device.NewSim(device.PM9A1SSD, capacity)
	fd := newTestFile(t, capacity, Spec{})

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		addr := uint64(rng.Intn(capacity - 9000))
		n := 1 + rng.Intn(8192) // crosses page boundaries, arbitrary alignment
		switch rng.Intn(4) {
		case 0: // accounted write
			p := make([]byte, n)
			rng.Read(p)
			if _, err := sim.WriteAt(addr, p); err != nil {
				t.Fatal(err)
			}
			if _, err := fd.WriteAt(addr, p); err != nil {
				t.Fatal(err)
			}
		case 1: // unaccounted write
			p := make([]byte, n)
			rng.Read(p)
			if err := sim.PokeAt(addr, p); err != nil {
				t.Fatal(err)
			}
			if err := fd.PokeAt(addr, p); err != nil {
				t.Fatal(err)
			}
		case 2: // accounted read
			a, b := make([]byte, n), make([]byte, n)
			if _, err := sim.ReadAt(addr, a); err != nil {
				t.Fatal(err)
			}
			if _, err := fd.ReadAt(addr, b); err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Fatalf("op %d: ReadAt(%d, %d) diverged between sim and file", i, addr, n)
			}
		case 3: // unaccounted read
			a, b := make([]byte, n), make([]byte, n)
			if err := sim.PeekAt(addr, a); err != nil {
				t.Fatal(err)
			}
			if err := fd.PeekAt(addr, b); err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Fatalf("op %d: PeekAt(%d, %d) diverged between sim and file", i, addr, n)
			}
		}
	}
	// The accounted byte/op counters must agree too: both backends round
	// to the profile page size.
	ss, fs := sim.Stats(), fd.Stats()
	if ss.Reads != fs.Reads || ss.Writes != fs.Writes ||
		ss.BytesRead != fs.BytesRead || ss.BytesWritten != fs.BytesWritten {
		t.Fatalf("accounting diverged: sim %+v, file %+v", ss, fs)
	}
}

// TestFileDeviceUnalignedRMW checks that an unaligned write preserves
// the surrounding bytes (the read-modify-write edge-page path).
func TestFileDeviceUnalignedRMW(t *testing.T) {
	fd := newTestFile(t, 1<<16, Spec{})
	base := make([]byte, 3*pageAlign)
	for i := range base {
		base[i] = byte(i)
	}
	if _, err := fd.WriteAt(0, base); err != nil {
		t.Fatal(err)
	}
	// Overwrite 100 bytes straddling the page-1/page-2 boundary.
	patch := make([]byte, 100)
	for i := range patch {
		patch[i] = 0xEE
	}
	at := uint64(2*pageAlign - 50)
	if _, err := fd.WriteAt(at, patch); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(base))
	if _, err := fd.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := byte(i)
		if uint64(i) >= at && uint64(i) < at+100 {
			want = 0xEE
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x (RMW corrupted the span)", i, got[i], want)
		}
	}
}

// TestFileDeviceOutOfRange verifies range checks on every entry point.
func TestFileDeviceOutOfRange(t *testing.T) {
	fd := newTestFile(t, 8192, Spec{})
	buf := make([]byte, 16)
	if _, err := fd.ReadAt(8190, buf); err == nil {
		t.Fatal("ReadAt past capacity accepted")
	}
	if _, err := fd.WriteAt(8190, buf); err == nil {
		t.Fatal("WriteAt past capacity accepted")
	}
	if err := fd.PeekAt(1<<40, buf); err == nil {
		t.Fatal("PeekAt past capacity accepted")
	}
	if err := fd.PokeAt(8192, buf); err == nil {
		t.Fatal("PokeAt at capacity accepted")
	}
}

// TestFileDeviceShortRead truncates the backing file behind the device's
// back; the next read must fail loudly, not return silent zeros.
func TestFileDeviceShortRead(t *testing.T) {
	fd := newTestFile(t, 1<<16, Spec{})
	p := make([]byte, pageAlign)
	if _, err := fd.WriteAt(0, p); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(fd.Path(), 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := fd.ReadAt(0, p); err == nil || !strings.Contains(err.Error(), "short read") {
		t.Fatalf("read from truncated backing file: err = %v, want short-read failure", err)
	}
}

// TestFileDeviceSnapshotRoundtrip checks Snapshot/Restore on one device
// and, critically, across backends: file → sim and sim → file, same
// wire format, same bytes, same stats.
func TestFileDeviceSnapshotRoundtrip(t *testing.T) {
	const capacity = 1 << 18
	fd := newTestFile(t, capacity, Spec{})
	rng := rand.New(rand.NewSource(7))
	want := make([]byte, 3*pageAlign+123)
	rng.Read(want)
	if _, err := fd.WriteAt(pageAlign+17, want); err != nil {
		t.Fatal(err)
	}

	snap, err := fd.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// file → sim
	sim := device.NewSim(device.PM9A1SSD, capacity)
	if err := sim.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := sim.PeekAt(pageAlign+17, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("file→sim restore lost bytes")
	}
	if sim.Stats() != fd.Stats() {
		t.Fatalf("file→sim restore stats %+v != %+v", sim.Stats(), fd.Stats())
	}

	// sim → file (fresh device)
	fd2 := newTestFile(t, capacity, Spec{})
	simSnap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := fd2.Restore(simSnap); err != nil {
		t.Fatal(err)
	}
	if err := fd2.PeekAt(pageAlign+17, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("sim→file restore lost bytes")
	}
	// And the restored file snapshots back to identical contents.
	snap2, err := fd2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap2) != string(snap) {
		t.Fatal("snapshot not stable across a cross-backend roundtrip")
	}
}

// TestFileDeviceRestoreRejectsMismatch: profile and capacity guards.
func TestFileDeviceRestoreRejectsMismatch(t *testing.T) {
	fd := newTestFile(t, 1<<16, Spec{})
	otherProfile := device.NewSim(device.DDR5DRAM, 1<<16)
	snap, err := otherProfile.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := fd.Restore(snap); err == nil {
		t.Fatal("restore accepted a snapshot from a different profile")
	}
	otherCap := device.NewSim(device.PM9A1SSD, 1<<17)
	if snap, err = otherCap.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := fd.Restore(snap); err == nil {
		t.Fatal("restore accepted a snapshot with a different capacity")
	}
}

// TestFileDeviceFsyncPolicies exercises the three durability modes.
func TestFileDeviceFsyncPolicies(t *testing.T) {
	page := make([]byte, pageAlign)

	always := newTestFile(t, 1<<16, Spec{Fsync: FsyncAlways})
	for i := 0; i < 3; i++ {
		if _, err := always.WriteAt(uint64(i)*pageAlign, page); err != nil {
			t.Fatal(err)
		}
	}
	if rep := always.Report(); rep.Fsyncs != 3 || rep.DirtyPages != 0 {
		t.Fatalf("always: fsyncs=%d dirty=%d, want 3/0", rep.Fsyncs, rep.DirtyPages)
	}

	// Batched with a 4-page window: the 4th page written forces a flush.
	batched := newTestFile(t, 1<<16, Spec{Fsync: FsyncBatched, MaxDirtyPages: 4})
	for i := 0; i < 3; i++ {
		if _, err := batched.WriteAt(uint64(i)*pageAlign, page); err != nil {
			t.Fatal(err)
		}
	}
	if rep := batched.Report(); rep.Fsyncs != 0 || rep.DirtyPages != 3 {
		t.Fatalf("batched pre-bound: fsyncs=%d dirty=%d, want 0/3", rep.Fsyncs, rep.DirtyPages)
	}
	if _, err := batched.WriteAt(3*pageAlign, page); err != nil {
		t.Fatal(err)
	}
	if rep := batched.Report(); rep.Fsyncs != 1 || rep.DirtyPages != 0 {
		t.Fatalf("batched at bound: fsyncs=%d dirty=%d, want 1/0", rep.Fsyncs, rep.DirtyPages)
	}

	never := newTestFile(t, 1<<16, Spec{Fsync: FsyncNever})
	for i := 0; i < 10; i++ {
		if _, err := never.WriteAt(uint64(i)*pageAlign, page); err != nil {
			t.Fatal(err)
		}
	}
	if rep := never.Report(); rep.Fsyncs != 0 {
		t.Fatalf("never: fsyncs=%d, want 0", rep.Fsyncs)
	}
	// An explicit barrier still works under any policy.
	if err := never.Sync(); err != nil {
		t.Fatal(err)
	}
	if rep := never.Report(); rep.Fsyncs != 1 {
		t.Fatalf("never+Sync: fsyncs=%d, want 1", rep.Fsyncs)
	}
}

// TestFileDeviceLatencyReport: real I/O must populate the histograms on
// both the accounted (ReadAt/WriteAt) and unaccounted (Peek/Poke) paths.
func TestFileDeviceLatencyReport(t *testing.T) {
	fd := newTestFile(t, 1<<16, Spec{})
	p := make([]byte, 512)
	if _, err := fd.WriteAt(0, p); err != nil {
		t.Fatal(err)
	}
	if err := fd.PokeAt(4096, p); err != nil {
		t.Fatal(err)
	}
	if _, err := fd.ReadAt(0, p); err != nil {
		t.Fatal(err)
	}
	if err := fd.PeekAt(0, p); err != nil {
		t.Fatal(err)
	}
	rep := fd.Report()
	if rep.Read.Count != 2 || rep.Write.Count != 2 {
		t.Fatalf("latency counts read=%d write=%d, want 2/2", rep.Read.Count, rep.Write.Count)
	}
	if rep.Read.P50 <= 0 || rep.Read.Max < rep.Read.P50 || rep.Read.P99 < rep.Read.P50 {
		t.Fatalf("implausible read summary %+v", rep.Read)
	}
	if rep.Backend != "file" || rep.Name != "ssd" {
		t.Fatalf("report identity %q/%q", rep.Name, rep.Backend)
	}
	fd.ResetStats()
	if rep := fd.Report(); rep.Read.Count != 0 || rep.Write.Count != 0 {
		t.Fatal("ResetStats did not clear latency histograms")
	}
}

// TestFileDeviceChargeMatchesSim: phantom accounting over the file
// backend must model exactly what the simulator models.
func TestFileDeviceChargeMatchesSim(t *testing.T) {
	sim := device.NewSim(device.PM9A1SSD, 1<<20)
	fd := newTestFile(t, 1<<20, Spec{})
	for _, n := range []int{1, 100, 4096, 9000} {
		if s, f := sim.Charge(device.OpRead, 0, n), fd.Charge(device.OpRead, 0, n); s != f {
			t.Fatalf("Charge(read, %d): sim %v != file %v", n, s, f)
		}
		if s, f := sim.ChargeN(device.OpWrite, n, 7), fd.ChargeN(device.OpWrite, n, 7); s != f {
			t.Fatalf("ChargeN(write, %d, 7): sim %v != file %v", n, s, f)
		}
	}
	if sim.Stats() != fd.Stats() {
		t.Fatalf("phantom accounting diverged: sim %+v, file %+v", sim.Stats(), fd.Stats())
	}
}

// TestFileDeviceClosed: every operation fails with ErrClosed after
// Close, and Close is idempotent.
func TestFileDeviceClosed(t *testing.T) {
	fd := newTestFile(t, 1<<16, Spec{})
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fd.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	p := make([]byte, 8)
	if _, err := fd.ReadAt(0, p); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadAt after close: %v", err)
	}
	if _, err := fd.WriteAt(0, p); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteAt after close: %v", err)
	}
	if _, err := fd.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after close: %v", err)
	}
	if err := fd.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close: %v", err)
	}
}

// TestFileDeviceDirectRequest: requesting O_DIRECT must never fail the
// open — on filesystems without it (tmpfs, where CI runs) the device
// falls back to buffered I/O and says so in its report.
func TestFileDeviceDirectRequest(t *testing.T) {
	fd := newTestFile(t, 1<<16, Spec{Direct: true})
	p := make([]byte, pageAlign)
	if _, err := fd.WriteAt(0, p); err != nil {
		t.Fatal(err)
	}
	if _, err := fd.ReadAt(0, p); err != nil {
		t.Fatal(err)
	}
	t.Logf("O_DIRECT active: %v (falls back silently where unsupported)", fd.Direct())
}

// TestFileDeviceReopenStartsZeroed: the backing file is working state;
// reopening the same path must present a zeroed device.
func TestFileDeviceReopenStartsZeroed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssd.dev")
	fd, err := OpenFile("ssd", path, device.PM9A1SSD, 1<<16, Spec{})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 64)
	for i := range p {
		p[i] = 0xAB
	}
	if _, err := fd.WriteAt(0, p); err != nil {
		t.Fatal(err)
	}
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}
	fd2, err := OpenFile("ssd", path, device.PM9A1SSD, 1<<16, Spec{})
	if err != nil {
		t.Fatal(err)
	}
	defer fd2.Close()
	got := make([]byte, 64)
	if _, err := fd2.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x after reopen, want zeroed working state", i, b)
		}
	}
}

// TestStorageOpenAndSpec covers the factory and the CLI spec parsing.
func TestStorageOpenAndSpec(t *testing.T) {
	if k, err := ParseKind(""); err != nil || k != KindSim {
		t.Fatalf("ParseKind(\"\") = %v, %v", k, err)
	}
	if k, err := ParseKind("file"); err != nil || k != KindFile {
		t.Fatalf("ParseKind(file) = %v, %v", k, err)
	}
	if _, err := ParseKind("nvme"); err == nil {
		t.Fatal("unknown backend accepted")
	}

	// Sim kind ignores dir; zero Spec is the simulator.
	d, err := Open("ssd", device.PM9A1SSD, 1<<16, Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*device.Sim); !ok {
		t.Fatalf("zero Spec opened %T, want *device.Sim", d)
	}

	// File kind without a dir fails in Open but ParseSpec provisions one.
	if _, err := Open("ssd", device.PM9A1SSD, 1<<16, Spec{Kind: KindFile}); err == nil {
		t.Fatal("file backend without dir accepted")
	}
	spec, err := ParseSpec("file", "", false)
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(spec.Dir)
	if spec.Dir == "" {
		t.Fatal("ParseSpec(file) did not provision a directory")
	}

	// Prefix qualifies both the file name and the device name.
	spec.Prefix = "shard3"
	d, err = Open("ssd", device.PM9A1SSD, 1<<16, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	fd := d.(*File)
	if fd.Name() != "shard3/ssd" {
		t.Fatalf("device name %q, want shard3/ssd", fd.Name())
	}
	if want := filepath.Join(spec.Dir, "shard3-ssd.dev"); fd.Path() != want {
		t.Fatalf("backing file %q, want %q", fd.Path(), want)
	}
}

// TestFileDeviceWearBytes mirrors the simulator's WAF model.
func TestFileDeviceWearBytes(t *testing.T) {
	fd := newTestFile(t, 1<<16, Spec{})
	p := make([]byte, pageAlign)
	if _, err := fd.WriteAt(0, p); err != nil {
		t.Fatal(err)
	}
	sim := device.NewSim(device.PM9A1SSD, 1<<16)
	if _, err := sim.WriteAt(0, p); err != nil {
		t.Fatal(err)
	}
	if fd.WearBytes() != sim.WearBytes() {
		t.Fatalf("WearBytes %d != sim %d", fd.WearBytes(), sim.WearBytes())
	}
}
