package device

import (
	"sync"
	"time"
)

// Recorder wraps a Device and records the address of every data access —
// the observation an adversary sitting on the memory bus makes (threat
// model, Sec 4.1: "the attacker can observe … the access pattern
// (address, size, and timing) for data stored off-chip"). Obliviousness
// tests replay workloads against a Recorder and check statistical
// properties of the trace (e.g. leaf-uniformity of ORAM paths,
// independence from the accessed block).
type Recorder struct {
	inner Device

	mu     sync.Mutex
	reads  []uint64
	writes []uint64
}

// NewRecorder wraps inner.
func NewRecorder(inner Device) *Recorder {
	return &Recorder{inner: inner}
}

// ReadAddrs returns a copy of the recorded read addresses, in order.
func (r *Recorder) ReadAddrs() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.reads...)
}

// WriteAddrs returns a copy of the recorded write addresses, in order.
func (r *Recorder) WriteAddrs() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.writes...)
}

// Clear drops the recorded trace.
func (r *Recorder) Clear() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reads = r.reads[:0]
	r.writes = r.writes[:0]
}

// ReadAt implements Device.
func (r *Recorder) ReadAt(addr uint64, p []byte) (time.Duration, error) {
	r.mu.Lock()
	r.reads = append(r.reads, addr)
	r.mu.Unlock()
	return r.inner.ReadAt(addr, p)
}

// WriteAt implements Device.
func (r *Recorder) WriteAt(addr uint64, p []byte) (time.Duration, error) {
	r.mu.Lock()
	r.writes = append(r.writes, addr)
	r.mu.Unlock()
	return r.inner.WriteAt(addr, p)
}

// PeekAt implements Device (unrecorded: simulator plumbing, invisible to
// the modelled adversary because the covering transfer was recorded by
// its Charge call).
func (r *Recorder) PeekAt(addr uint64, p []byte) error { return r.inner.PeekAt(addr, p) }

// PokeAt implements Device (unrecorded, see PeekAt).
func (r *Recorder) PokeAt(addr uint64, p []byte) error { return r.inner.PokeAt(addr, p) }

// Charge implements Device. The address is recorded: phantom-mode
// accounting stands in for the data transfer the adversary would see.
func (r *Recorder) Charge(op Op, addr uint64, n int) time.Duration {
	r.mu.Lock()
	if op == OpRead {
		r.reads = append(r.reads, addr)
	} else {
		r.writes = append(r.writes, addr)
	}
	r.mu.Unlock()
	return r.inner.Charge(op, addr, n)
}

// ChargeN implements Device (recorded as one covering access).
func (r *Recorder) ChargeN(op Op, n, count int) time.Duration {
	return r.inner.ChargeN(op, n, count)
}

// Stats implements Device.
func (r *Recorder) Stats() Stats { return r.inner.Stats() }

// ResetStats implements Device.
func (r *Recorder) ResetStats() { r.inner.ResetStats() }

// Capacity implements Device.
func (r *Recorder) Capacity() uint64 { return r.inner.Capacity() }

// PageSize implements Device.
func (r *Recorder) PageSize() int { return r.inner.PageSize() }
