package device

import (
	"errors"
	"fmt"
	"testing"
)

func TestFaultyFailsAfterBudget(t *testing.T) {
	f := NewFaulty(NewDRAM(1<<20), 2)
	buf := make([]byte, 8)
	if _, err := f.ReadAt(0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(0, buf); err != nil {
		t.Fatal(err)
	}
	if f.Tripped() {
		t.Error("tripped early")
	}
	if _, err := f.ReadAt(0, buf); !errors.Is(err, ErrInjected) {
		t.Errorf("third op err = %v", err)
	}
	if !f.Tripped() {
		t.Error("not tripped")
	}
	// Permanent failure.
	if _, err := f.WriteAt(0, buf); !errors.Is(err, ErrInjected) {
		t.Errorf("post-trip op err = %v", err)
	}
	if err := f.PeekAt(0, buf); !errors.Is(err, ErrInjected) {
		t.Errorf("peek err = %v", err)
	}
	if err := f.PokeAt(0, buf); !errors.Is(err, ErrInjected) {
		t.Errorf("poke err = %v", err)
	}
}

func TestFaultyErrorsWrapSentinel(t *testing.T) {
	f := NewFaulty(NewDRAM(1<<20), 0)
	_, err := f.ReadAt(42, make([]byte, 8))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if err.Error() == ErrInjected.Error() {
		t.Errorf("err %q carries no op/address context", err)
	}
	// A further wrap (as the ORAM layers add context) must still match.
	outer := fmt.Errorf("oram: fetch bucket: %w", err)
	if !errors.Is(outer, ErrInjected) {
		t.Errorf("double-wrapped err %v lost the sentinel", outer)
	}
}

func TestTransientFaultyRecovers(t *testing.T) {
	f := NewTransientFaulty(NewDRAM(1<<20), 0.3, 7)
	buf := make([]byte, 8)
	var fails, oks int
	for i := 0; i < 1000; i++ {
		if _, err := f.ReadAt(0, buf); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: err = %v", i, err)
			}
			fails++
		} else {
			oks++
		}
	}
	if fails == 0 || oks == 0 {
		t.Fatalf("p=0.3 over 1000 ops: %d fails, %d oks — device did not both fail and recover", fails, oks)
	}
	if fails < 200 || fails > 400 {
		t.Errorf("fails = %d, far from 1000·0.3", fails)
	}
	if f.Tripped() {
		t.Error("transient device reported permanently tripped")
	}
}

func TestTransientFaultyDeterministic(t *testing.T) {
	run := func() []bool {
		f := NewTransientFaulty(NewDRAM(1<<20), 0.5, 99)
		out := make([]bool, 64)
		buf := make([]byte, 8)
		for i := range out {
			_, err := f.WriteAt(0, buf)
			out[i] = err != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: fault pattern diverged between identical seeds", i)
		}
	}
}

func TestFaultyChargeNeverFails(t *testing.T) {
	f := NewFaulty(NewSSD(1<<20), 0)
	if d := f.Charge(OpRead, 0, 4096); d <= 0 {
		t.Error("charge failed on tripped device")
	}
	if d := f.ChargeN(OpWrite, 4096, 3); d <= 0 {
		t.Error("chargeN failed on tripped device")
	}
}

func TestFaultyDelegation(t *testing.T) {
	inner := NewDRAM(12345)
	f := NewFaulty(inner, 100)
	if f.Capacity() != 12345 || f.PageSize() != 1 {
		t.Error("delegation broken")
	}
	buf := make([]byte, 4)
	_, _ = f.WriteAt(0, buf)
	if f.Stats().Writes != 1 {
		t.Error("stats not delegated")
	}
	f.ResetStats()
	if f.Stats().Writes != 0 {
		t.Error("reset not delegated")
	}
}

func TestRecorderCapturesAddresses(t *testing.T) {
	r := NewRecorder(NewDRAM(1 << 20))
	buf := make([]byte, 8)
	if _, err := r.WriteAt(100, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAt(200, buf); err != nil {
		t.Fatal(err)
	}
	r.Charge(OpRead, 300, 8)
	r.Charge(OpWrite, 400, 8)
	reads, writes := r.ReadAddrs(), r.WriteAddrs()
	if len(reads) != 2 || reads[0] != 200 || reads[1] != 300 {
		t.Errorf("reads = %v", reads)
	}
	if len(writes) != 2 || writes[0] != 100 || writes[1] != 400 {
		t.Errorf("writes = %v", writes)
	}
	// Peek/Poke/ChargeN are unrecorded plumbing.
	_ = r.PeekAt(500, buf)
	_ = r.PokeAt(600, buf)
	r.ChargeN(OpRead, 8, 3)
	if len(r.ReadAddrs()) != 2 || len(r.WriteAddrs()) != 2 {
		t.Error("plumbing ops were recorded")
	}
	r.Clear()
	if len(r.ReadAddrs()) != 0 || len(r.WriteAddrs()) != 0 {
		t.Error("Clear failed")
	}
	// Delegation.
	if r.Capacity() != 1<<20 || r.PageSize() != 1 {
		t.Error("delegation broken")
	}
	if r.Stats().Reads == 0 {
		t.Error("stats not delegated")
	}
	r.ResetStats()
	if r.Stats().Reads != 0 {
		t.Error("reset not delegated")
	}
}
