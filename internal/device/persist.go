package device

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/persist"
)

// Snapshot/Restore make a storage device durable: its page store IS the
// ORAM's on-"disk" image (tree buckets live here), so checkpointing a
// controller means checkpointing its devices. Only non-zero pages are
// serialized — never-written and all-zero pages read back as zeros
// either way — so the snapshot size tracks the bytes the ORAM actually
// touched, not the provisioned capacity.
//
// The wire format is shared across Storage implementations (the Sim here
// and internal/storage's file-backed device): EncodeSnapshot and
// DecodeSnapshot below are the single encoder/decoder pair, which is
// what makes a checkpoint taken over one backend restorable onto the
// other.

const simSnapshotVersion = 1

// SnapshotPageSize is the page granularity of the device-snapshot wire
// format. It equals the simulator's sparse-store granularity and is an
// implementation detail independent of the modelled Profile.PageSize.
const SnapshotPageSize = storePageSize

// EncodeSnapshot serializes device contents and counters in the shared
// device-snapshot wire format. pages maps page index -> SnapshotPageSize
// bytes; all-zero pages are elided, the rest are written in ascending
// index order so encoding is deterministic.
func EncodeSnapshot(profileName string, capacity uint64, st Stats, pages map[uint64][]byte) []byte {
	var e persist.Encoder
	e.U8(simSnapshotVersion)
	e.String(profileName)
	e.U64(capacity)
	e.U64(st.Reads)
	e.U64(st.Writes)
	e.U64(st.BytesRead)
	e.U64(st.BytesWritten)
	e.I64(int64(st.BusyTime))

	idxs := make([]uint64, 0, len(pages))
	for idx, page := range pages {
		if !allZero(page) {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	e.U64(uint64(len(idxs)))
	for _, idx := range idxs {
		e.U64(idx)
		e.Bytes(pages[idx])
	}
	return e.Finish()
}

// DecodeSnapshot parses the shared device-snapshot wire format. The
// returned pages are freshly allocated SnapshotPageSize buffers.
func DecodeSnapshot(b []byte) (profileName string, capacity uint64, st Stats, pages map[uint64][]byte, err error) {
	d := persist.NewDecoder(b)
	if v := d.U8(); d.Err() == nil && v != simSnapshotVersion {
		return "", 0, Stats{}, nil, fmt.Errorf("device: unsupported snapshot version %d", v)
	}
	profileName = d.String()
	capacity = d.U64()
	st.Reads = d.U64()
	st.Writes = d.U64()
	st.BytesRead = d.U64()
	st.BytesWritten = d.U64()
	st.BusyTime = time.Duration(d.I64())
	n := d.U64()
	pages = make(map[uint64][]byte, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		idx := d.U64()
		page := d.Bytes()
		if len(page) != SnapshotPageSize {
			return "", 0, Stats{}, nil, fmt.Errorf("device: snapshot page %d has %d bytes, want %d",
				idx, len(page), SnapshotPageSize)
		}
		pages[idx] = page
	}
	if err := d.Err(); err != nil {
		return "", 0, Stats{}, nil, fmt.Errorf("device: snapshot: %w", err)
	}
	return profileName, capacity, st, pages, nil
}

// Snapshot serializes the device contents and traffic counters.
func (s *Sim) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return EncodeSnapshot(s.profile.Name, s.capacity, s.stats, s.pages), nil
}

// Restore replaces the device contents and counters with a snapshot.
// The device must have the same profile name and capacity it was
// snapshotted with (geometry is configuration, not state).
func (s *Sim) Restore(b []byte) error {
	name, capacity, st, pages, err := DecodeSnapshot(b)
	if err != nil {
		return fmt.Errorf("device %s: %w", s.profile.Name, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if name != s.profile.Name {
		return fmt.Errorf("device: snapshot is for profile %q, this device is %q", name, s.profile.Name)
	}
	if capacity != s.capacity {
		return fmt.Errorf("device %s: snapshot capacity %d != device capacity %d",
			s.profile.Name, capacity, s.capacity)
	}
	s.pages = pages
	s.stats = st
	return nil
}

func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
