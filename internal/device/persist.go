package device

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/persist"
)

// Snapshot/Restore make the simulated device durable: the sparse page
// store IS the ORAM's on-"disk" image (tree buckets live here), so
// checkpointing a controller means checkpointing its devices. Only
// non-zero pages are serialized — never-written and all-zero pages read
// back as zeros either way — so the snapshot size tracks the bytes the
// ORAM actually touched, not the provisioned capacity.

const simSnapshotVersion = 1

// Snapshot serializes the device contents and traffic counters.
func (s *Sim) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var e persist.Encoder
	e.U8(simSnapshotVersion)
	e.String(s.profile.Name)
	e.U64(s.capacity)
	e.U64(s.stats.Reads)
	e.U64(s.stats.Writes)
	e.U64(s.stats.BytesRead)
	e.U64(s.stats.BytesWritten)
	e.I64(int64(s.stats.BusyTime))

	idxs := make([]uint64, 0, len(s.pages))
	for idx, page := range s.pages {
		if !allZero(page) {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	e.U64(uint64(len(idxs)))
	for _, idx := range idxs {
		e.U64(idx)
		e.Bytes(s.pages[idx])
	}
	return e.Finish(), nil
}

// Restore replaces the device contents and counters with a snapshot.
// The device must have the same profile name and capacity it was
// snapshotted with (geometry is configuration, not state).
func (s *Sim) Restore(b []byte) error {
	d := persist.NewDecoder(b)
	if v := d.U8(); d.Err() == nil && v != simSnapshotVersion {
		return fmt.Errorf("device %s: unsupported snapshot version %d", s.profile.Name, v)
	}
	name := d.String()
	capacity := d.U64()
	var st Stats
	st.Reads = d.U64()
	st.Writes = d.U64()
	st.BytesRead = d.U64()
	st.BytesWritten = d.U64()
	st.BusyTime = time.Duration(d.I64())
	n := d.U64()
	pages := make(map[uint64][]byte, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		idx := d.U64()
		page := d.Bytes()
		if len(page) != storePageSize {
			return fmt.Errorf("device %s: snapshot page %d has %d bytes, want %d",
				s.profile.Name, idx, len(page), storePageSize)
		}
		pages[idx] = page
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("device %s: %w", s.profile.Name, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if name != s.profile.Name {
		return fmt.Errorf("device: snapshot is for profile %q, this device is %q", name, s.profile.Name)
	}
	if capacity != s.capacity {
		return fmt.Errorf("device %s: snapshot capacity %d != device capacity %d",
			s.profile.Name, capacity, s.capacity)
	}
	s.pages = pages
	s.stats = st
	return nil
}

func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
