package device

import (
	"testing"
	"time"
)

func TestReadBackWrites(t *testing.T) {
	d := NewDRAM(1 << 20)
	data := []byte("hello, oram")
	if _, err := d.WriteAt(100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(100, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("read back %q, want %q", got, data)
	}
}

func TestUnwrittenReadsAsZero(t *testing.T) {
	d := NewDRAM(1 << 20)
	p := []byte{0xFF, 0xFF, 0xFF}
	if _, err := d.ReadAt(5000, p); err != nil {
		t.Fatal(err)
	}
	for i, b := range p {
		if b != 0 {
			t.Errorf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestWriteSpanningStorePages(t *testing.T) {
	d := NewDRAM(1 << 20)
	data := make([]byte, 10000) // spans 3 backing pages
	for i := range data {
		data[i] = byte(i % 251)
	}
	addr := uint64(storePageSize - 17)
	if _, err := d.WriteAt(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(addr, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("mismatch at offset %d", i)
		}
	}
}

func TestOutOfRangeAccessFails(t *testing.T) {
	d := NewDRAM(1024)
	if _, err := d.WriteAt(1020, make([]byte, 8)); err == nil {
		t.Error("write past capacity succeeded")
	}
	if _, err := d.ReadAt(1025, make([]byte, 1)); err == nil {
		t.Error("read past capacity succeeded")
	}
	// Exactly at the boundary is fine.
	if _, err := d.WriteAt(1016, make([]byte, 8)); err != nil {
		t.Errorf("boundary write failed: %v", err)
	}
}

func TestSSDPageRounding(t *testing.T) {
	d := NewSSD(1 << 20)
	if _, err := d.WriteAt(0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.BytesWritten != 4096 {
		t.Errorf("BytesWritten = %d, want 4096 (page-rounded)", st.BytesWritten)
	}
	if _, err := d.ReadAt(0, make([]byte, 4097)); err != nil {
		t.Fatal(err)
	}
	st = d.Stats()
	if st.BytesRead != 8192 {
		t.Errorf("BytesRead = %d, want 8192 (two pages)", st.BytesRead)
	}
}

func TestDRAMNoRounding(t *testing.T) {
	d := NewDRAM(1 << 20)
	if _, err := d.WriteAt(0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.BytesWritten != 100 {
		t.Errorf("BytesWritten = %d, want 100", st.BytesWritten)
	}
}

func TestChargeAccountsWithoutStoring(t *testing.T) {
	d := NewSSD(1 << 30)
	dur := d.Charge(OpWrite, 0, 4096)
	if dur <= 0 {
		t.Error("Charge returned non-positive duration")
	}
	st := d.Stats()
	if st.Writes != 1 || st.BytesWritten != 4096 {
		t.Errorf("stats after Charge = %+v", st)
	}
	if d.ResidentBytes() != 0 {
		t.Errorf("Charge materialized %d bytes", d.ResidentBytes())
	}
}

func TestTimingModel(t *testing.T) {
	d := NewSSD(1 << 30)
	rd := d.Charge(OpRead, 0, 4096)
	wr := d.Charge(OpWrite, 0, 4096)
	// One-page read ≈ 70µs/QD16 + 4096/7e9 s; write ≈ 20µs/QD16 + …
	wantRd := PM9A1SSD.ReadLatency / time.Duration(PM9A1SSD.QueueDepth)
	wantWr := PM9A1SSD.WriteLatency / time.Duration(PM9A1SSD.QueueDepth)
	if rd < wantRd || rd > wantRd+10*time.Microsecond {
		t.Errorf("read time = %v", rd)
	}
	if wr < wantWr || wr > wantWr+10*time.Microsecond {
		t.Errorf("write time = %v", wr)
	}
	// Larger transfers take longer via the bandwidth term.
	big := d.Charge(OpRead, 0, 1<<20)
	if big <= rd {
		t.Errorf("1 MiB read (%v) not slower than 4 KiB read (%v)", big, rd)
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	d := NewDRAM(1 << 20)
	_, _ = d.WriteAt(0, make([]byte, 10))
	_, _ = d.ReadAt(0, make([]byte, 10))
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.BusyTime <= 0 {
		t.Errorf("stats = %+v", st)
	}
	d.ResetStats()
	if st := d.Stats(); st != (Stats{}) {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Reads: 1, Writes: 2, BytesRead: 3, BytesWritten: 4, BusyTime: 5}
	b := Stats{Reads: 10, Writes: 20, BytesRead: 30, BytesWritten: 40, BusyTime: 50}
	a.Add(b)
	want := Stats{Reads: 11, Writes: 22, BytesRead: 33, BytesWritten: 44, BusyTime: 55}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

func TestSparseStoreStaysSmall(t *testing.T) {
	d := NewSSD(1 << 40) // 1 TiB address space
	// Touch three far-apart pages.
	for _, addr := range []uint64{0, 1 << 30, 1 << 39} {
		if _, err := d.WriteAt(addr, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if rb := d.ResidentBytes(); rb > 3*4096 {
		t.Errorf("resident = %d bytes for 3 page writes", rb)
	}
}

func TestActiveEnergy(t *testing.T) {
	d := NewSSD(1 << 30)
	d.Charge(OpRead, 0, 1<<30) // ~0.15 s at 7 GB/s
	e := ActiveEnergyJoules(PM9A1SSD, d.Stats())
	if e <= 0 {
		t.Error("energy should be positive")
	}
	// Sanity: energy = power × time within float tolerance.
	want := PM9A1SSD.ActivePower * d.Stats().BusyTime.Seconds()
	if diff := e - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy = %v, want %v", e, want)
	}
}

func TestBadProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSim with PageSize 0 did not panic")
		}
	}()
	NewSim(Profile{PageSize: 0}, 100)
}

func TestNegativeLengthRejected(t *testing.T) {
	d := NewDRAM(100)
	if err := d.checkRange(0, -1); err == nil {
		t.Error("negative length accepted")
	}
}

func TestWearBytesAmplification(t *testing.T) {
	p := PM9A1SSD
	p.WriteAmplification = 2.5
	d := NewSim(p, 1<<20)
	d.Charge(OpWrite, 0, 4096)
	if got := d.WearBytes(); got != uint64(2.5*4096) {
		t.Errorf("WearBytes = %d, want %d", got, uint64(2.5*4096))
	}
	// Default profile: WAF 1 (whole-page ORAM bucket writes).
	d2 := NewSSD(1 << 20)
	d2.Charge(OpWrite, 0, 4096)
	if d2.WearBytes() != 4096 {
		t.Errorf("default WearBytes = %d", d2.WearBytes())
	}
}
