// Package device models the untrusted off-chip storage devices FEDORA
// places its data structures on: DRAM (buffer ORAM, VTree, stash, path
// buffer, position map) and an NVMe SSD (the main ORAM), per Sec 4 of the
// paper.
//
// Both devices are discrete-event simulators: every operation moves real
// bytes through a sparse page store AND returns a modelled duration.
// Performance results in the paper are ratios (lifetime improvement,
// latency overhead relative to a 2-minute FL round), which depend on the
// counts and sizes of accesses — quantities this model reproduces exactly
// — rather than on microarchitectural detail.
//
// The SSD is a block device: reads and writes are rounded up to whole
// pages (4 KB by default), which is why FEDORA sizes ORAM buckets in
// multiples of the page size (Sec 6.6). Written bytes are tracked for the
// wear/lifetime model (Sec 6.2: 5.4 PB may be written per TB of capacity).
//
// Key invariants: every operation both moves real bytes and advances the
// modelled clock/counters (accounting-only mode advances just the
// latter, by identical amounts); SSD accesses round up to whole pages;
// and contents are bit-faithful — a read returns exactly what was last
// written.
package device

import (
	"fmt"
	"sync"
	"time"
)

// Op identifies the direction of an access for accounting purposes.
type Op int

const (
	// OpRead is a device read.
	OpRead Op = iota
	// OpWrite is a device write.
	OpWrite
)

// Stats aggregates the traffic a device has served since the last reset.
type Stats struct {
	Reads        uint64        // read operations (post page-rounding, in pages for SSD)
	Writes       uint64        // write operations
	BytesRead    uint64        // bytes transferred by reads (page-rounded)
	BytesWritten uint64        // bytes transferred by writes (page-rounded)
	BusyTime     time.Duration // modelled time the device spent serving ops
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
	s.BusyTime += other.BusyTime
}

// Device is untrusted storage with modelled timing. Implementations must
// be safe for use from a single goroutine; the FEDORA controller is
// logically a single sequential trusted unit.
type Device interface {
	// ReadAt fills p with the bytes at [addr, addr+len(p)) and returns
	// the modelled duration of the access.
	ReadAt(addr uint64, p []byte) (time.Duration, error)
	// WriteAt stores p at [addr, addr+len(p)) and returns the modelled
	// duration of the access.
	WriteAt(addr uint64, p []byte) (time.Duration, error)
	// Charge accounts for an access of n bytes at addr without moving
	// data. ORAMs running in phantom (accounting-only) mode use this so
	// that production-scale experiments need not materialize terabytes.
	Charge(op Op, addr uint64, n int) time.Duration
	// ChargeN accounts `count` back-to-back accesses of n bytes each in
	// one call (a full ORAM path, say) and returns their total duration.
	ChargeN(op Op, n, count int) time.Duration
	// PeekAt and PokeAt move bytes WITHOUT accounting. They are simulator
	// plumbing for components that account traffic explicitly via Charge
	// (so that phantom and functional modes report identical stats); they
	// are not part of the modelled device surface.
	PeekAt(addr uint64, p []byte) error
	PokeAt(addr uint64, p []byte) error
	// Stats returns the accumulated traffic counters.
	Stats() Stats
	// ResetStats zeroes the counters (capacity and contents unaffected).
	ResetStats()
	// Capacity returns the device size in bytes.
	Capacity() uint64
	// PageSize returns the access granularity in bytes (1 for DRAM).
	PageSize() int
}

// Storage is a Device that can serve as the durable home of an ORAM: it
// additionally exposes its timing/geometry profile, flash-wear
// accounting, and whole-device Snapshot/Restore for the checkpoint
// layer. Both the discrete-event simulator (Sim, this package) and the
// real file-backed device (internal/storage.File) implement it; the
// fedora controller provisions its main device through this interface so
// backends are interchangeable. Snapshots use one wire format across
// implementations — a checkpoint taken over the simulator restores onto
// a file-backed device and vice versa.
type Storage interface {
	Device
	// Profile returns the device's timing/geometry profile (used for
	// accounting even when latencies are measured rather than modelled).
	Profile() Profile
	// WearBytes is the physical flash bytes consumed by the recorded
	// logical writes after write amplification (lifetime model input).
	WearBytes() uint64
	// Snapshot / Restore serialize the device contents and counters in
	// the shared device-snapshot wire format.
	Snapshot() ([]byte, error)
	Restore(b []byte) error
	// Close releases any OS resources (backing files). The simulator's
	// Close is a no-op; using a Storage after Close is an error for
	// implementations that hold file descriptors.
	Close() error
}

// Profile holds the timing/geometry constants of a simulated device.
type Profile struct {
	Name string
	// PageSize is the access granularity; reads/writes are rounded up to
	// multiples of it. 1 means byte-granular (DRAM model).
	PageSize int
	// ReadLatency / WriteLatency is the fixed per-command cost.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// ReadBandwidth / WriteBandwidth in bytes/second adds a size-
	// proportional term.
	ReadBandwidth  float64
	WriteBandwidth float64
	// ActivePower is the power draw, in watts, while serving an access.
	// DRAM additionally has capacity-proportional idle power, which the
	// cost model (internal/costmodel) accounts separately.
	ActivePower float64
	// CostPerGB is the hardware purchase cost in dollars per gigabyte.
	CostPerGB float64
	// QueueDepth models command-level parallelism: a stream of back-to-
	// back operations amortizes the fixed per-command latency by this
	// factor (NVMe devices serve many outstanding commands). 0/1 = fully
	// serial.
	QueueDepth int
	// EnduranceBytesPerTB is how many bytes may be written per TB of
	// capacity before wear-out (0 = unlimited, e.g. DRAM).
	EnduranceBytesPerTB float64
	// WriteAmplification is the flash-level bytes physically programmed
	// per logical byte written (0 = 1.0). ORAM bucket writes are whole
	// 4 KB pages, the access pattern the FTL handles with WAF ≈ 1; random
	// sub-page writes on other workloads would push this well above 1.
	WriteAmplification float64
}

// PM9A1SSD approximates the Samsung PM9A1 1 TB NVMe SSD used in the
// paper's evaluation (Sec 6.1): ~7 GB/s sequential read, ~5.2 GB/s
// sequential write, tens-of-microseconds command latency, 6.2 W active
// power (Samsung 980 PRO datasheet rating cited by the paper), $0.1/GB,
// and 5.4 PB written per TB endurance (Solidigm D7-P5620 figure cited in
// Sec 6.1).
var PM9A1SSD = Profile{
	Name:                "pm9a1-ssd",
	PageSize:            4096,
	ReadLatency:         70 * time.Microsecond,
	WriteLatency:        20 * time.Microsecond,
	ReadBandwidth:       7.0e9,
	WriteBandwidth:      5.2e9,
	ActivePower:         6.2,
	CostPerGB:           0.10,
	EnduranceBytesPerTB: 5.4e15,
	QueueDepth:          16,
}

// DDR5DRAM approximates a DDR5 DIMM: ~100 ns access latency, tens of
// GB/s of bandwidth, $3.15/GB (the paper's Sec 6.5 price), 375 mW/GB
// idle power (accounted by the cost model), no wear.
var DDR5DRAM = Profile{
	Name:           "ddr5-dram",
	PageSize:       1,
	ReadLatency:    100 * time.Nanosecond,
	WriteLatency:   100 * time.Nanosecond,
	ReadBandwidth:  25.6e9,
	WriteBandwidth: 25.6e9,
	ActivePower:    4.0,
	CostPerGB:      3.15,
}

// Sim is a simulated storage device with a sparse page store. Pages that
// were never written read back as zeros, so production-scale address
// spaces cost memory only for the pages actually touched.
type Sim struct {
	mu       sync.Mutex
	profile  Profile
	capacity uint64
	pages    map[uint64][]byte // page index -> storePageSize bytes
	stats    Stats
}

// storePageSize is the granularity of the sparse backing store. It is an
// implementation detail independent of the modelled Profile.PageSize.
const storePageSize = 4096

// NewSim creates a device with the given profile and capacity in bytes.
func NewSim(p Profile, capacity uint64) *Sim {
	if p.PageSize <= 0 {
		panic("device: profile PageSize must be positive")
	}
	return &Sim{profile: p, capacity: capacity, pages: make(map[uint64][]byte)}
}

// NewSSD creates a PM9A1-profile SSD of the given capacity.
func NewSSD(capacity uint64) *Sim { return NewSim(PM9A1SSD, capacity) }

// NewDRAM creates a DDR5-profile DRAM of the given capacity.
func NewDRAM(capacity uint64) *Sim { return NewSim(DDR5DRAM, capacity) }

// Profile returns the device's timing profile.
func (s *Sim) Profile() Profile { return s.profile }

// Capacity implements Device.
func (s *Sim) Capacity() uint64 { return s.capacity }

// PageSize implements Device.
func (s *Sim) PageSize() int { return s.profile.PageSize }

// RoundUp rounds n up to a multiple of the profile's page size.
func (p Profile) RoundUp(n int) int {
	ps := p.PageSize
	if ps <= 1 {
		return n
	}
	return (n + ps - 1) / ps * ps
}

// OpTime models the duration of one access of n (page-rounded) bytes.
// The fixed command latency is divided by the queue depth: the ORAM
// issues long streams of independent bucket transfers, which an NVMe
// device overlaps; the bandwidth term is the serial floor. Shared by the
// simulator's data path and the file-backed device's accounting-only
// path (Charge/ChargeN have nothing to measure).
func (p Profile) OpTime(op Op, n int) time.Duration {
	var lat time.Duration
	var bw float64
	if op == OpRead {
		lat, bw = p.ReadLatency, p.ReadBandwidth
	} else {
		lat, bw = p.WriteLatency, p.WriteBandwidth
	}
	if qd := p.QueueDepth; qd > 1 {
		lat /= time.Duration(qd)
	}
	if bw > 0 {
		lat += time.Duration(float64(n) / bw * float64(time.Second))
	}
	return lat
}

// roundUp rounds n up to a multiple of the device page size.
func (s *Sim) roundUp(n int) int { return s.profile.RoundUp(n) }

// opTime models one access of n (page-rounded) bytes; see Profile.OpTime.
func (s *Sim) opTime(op Op, n int) time.Duration { return s.profile.OpTime(op, n) }

// account updates counters for one access and returns its duration.
// Callers must hold s.mu.
func (s *Sim) account(op Op, n int) time.Duration {
	n = s.roundUp(n)
	d := s.opTime(op, n)
	if op == OpRead {
		s.stats.Reads++
		s.stats.BytesRead += uint64(n)
	} else {
		s.stats.Writes++
		s.stats.BytesWritten += uint64(n)
	}
	s.stats.BusyTime += d
	return d
}

func (s *Sim) checkRange(addr uint64, n int) error {
	if n < 0 {
		return fmt.Errorf("device %s: negative length %d", s.profile.Name, n)
	}
	if addr+uint64(n) > s.capacity {
		return fmt.Errorf("device %s: access [%d, %d) exceeds capacity %d",
			s.profile.Name, addr, addr+uint64(n), s.capacity)
	}
	return nil
}

// copyOut fills p from the sparse store; caller holds s.mu.
func (s *Sim) copyOut(addr uint64, p []byte) {
	for off := 0; off < len(p); {
		pageIdx := (addr + uint64(off)) / storePageSize
		inPage := int((addr + uint64(off)) % storePageSize)
		n := storePageSize - inPage
		if n > len(p)-off {
			n = len(p) - off
		}
		if page, ok := s.pages[pageIdx]; ok {
			copy(p[off:off+n], page[inPage:inPage+n])
		} else {
			for i := off; i < off+n; i++ {
				p[i] = 0
			}
		}
		off += n
	}
}

// copyIn stores p into the sparse store; caller holds s.mu.
func (s *Sim) copyIn(addr uint64, p []byte) {
	for off := 0; off < len(p); {
		pageIdx := (addr + uint64(off)) / storePageSize
		inPage := int((addr + uint64(off)) % storePageSize)
		n := storePageSize - inPage
		if n > len(p)-off {
			n = len(p) - off
		}
		page, ok := s.pages[pageIdx]
		if !ok {
			page = make([]byte, storePageSize)
			s.pages[pageIdx] = page
		}
		copy(page[inPage:inPage+n], p[off:off+n])
		off += n
	}
}

// ReadAt implements Device.
func (s *Sim) ReadAt(addr uint64, p []byte) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkRange(addr, len(p)); err != nil {
		return 0, err
	}
	s.copyOut(addr, p)
	return s.account(OpRead, len(p)), nil
}

// WriteAt implements Device.
func (s *Sim) WriteAt(addr uint64, p []byte) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkRange(addr, len(p)); err != nil {
		return 0, err
	}
	s.copyIn(addr, p)
	return s.account(OpWrite, len(p)), nil
}

// PeekAt implements Device: an unaccounted read.
func (s *Sim) PeekAt(addr uint64, p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkRange(addr, len(p)); err != nil {
		return err
	}
	s.copyOut(addr, p)
	return nil
}

// PokeAt implements Device: an unaccounted write.
func (s *Sim) PokeAt(addr uint64, p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkRange(addr, len(p)); err != nil {
		return err
	}
	s.copyIn(addr, p)
	return nil
}

// Charge implements Device.
func (s *Sim) Charge(op Op, addr uint64, n int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.account(op, n)
}

// ChargeN implements Device.
func (s *Sim) ChargeN(op Op, n, count int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if count <= 0 {
		return 0
	}
	n = s.roundUp(n)
	per := s.opTime(op, n)
	total := per * time.Duration(count)
	if op == OpRead {
		s.stats.Reads += uint64(count)
		s.stats.BytesRead += uint64(n) * uint64(count)
	} else {
		s.stats.Writes += uint64(count)
		s.stats.BytesWritten += uint64(n) * uint64(count)
	}
	s.stats.BusyTime += total
	return total
}

// Stats implements Device.
func (s *Sim) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Device.
func (s *Sim) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// Close implements Storage. The simulator holds no OS resources; a
// closed Sim keeps working (contents live in host memory).
func (s *Sim) Close() error { return nil }

// ResidentBytes reports how much host memory the sparse store currently
// uses for materialized pages; useful in tests to confirm sparseness.
func (s *Sim) ResidentBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.pages)) * storePageSize
}

// WearBytes returns the physical flash bytes consumed by the recorded
// logical writes, after write amplification. The lifetime model should
// divide endurance by this, not by the logical count.
func (s *Sim) WearBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	waf := s.profile.WriteAmplification
	if waf <= 0 {
		waf = 1
	}
	return uint64(float64(s.stats.BytesWritten) * waf)
}

// ActiveEnergyJoules converts accumulated busy time into energy at the
// profile's active power.
func ActiveEnergyJoules(p Profile, st Stats) float64 {
	return p.ActivePower * st.BusyTime.Seconds()
}
