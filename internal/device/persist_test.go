package device

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64, writes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const capacity = 1 << 16
		a := NewSSD(capacity)
		for i := 0; i < int(writes%32)+1; i++ {
			buf := make([]byte, 512)
			rng.Read(buf)
			addr := uint64(rng.Intn(capacity - len(buf)))
			if _, err := a.WriteAt(addr, buf); err != nil {
				return false
			}
		}
		snap, err := a.Snapshot()
		if err != nil {
			return false
		}
		b := NewSSD(capacity)
		if err := b.Restore(snap); err != nil {
			return false
		}
		if a.Stats() != b.Stats() {
			return false
		}
		// Full-device content comparison.
		pa := make([]byte, capacity)
		pb := make([]byte, capacity)
		if err := a.PeekAt(0, pa); err != nil {
			return false
		}
		if err := b.PeekAt(0, pb); err != nil {
			return false
		}
		return bytes.Equal(pa, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSimRestoreGuards(t *testing.T) {
	a := NewSSD(1 << 16)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewSSD(1 << 17).Restore(snap); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
	if err := NewDRAM(1 << 16).Restore(snap); err == nil {
		t.Fatal("profile mismatch accepted")
	}
	if err := NewSSD(1 << 16).Restore(snap[:len(snap)/2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
