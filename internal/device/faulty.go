package device

import (
	"errors"
	"sync"
	"time"
)

// ErrInjected is the error a Faulty device returns once triggered.
var ErrInjected = errors.New("device: injected fault")

// Faulty wraps a Device and fails operations after a configurable number
// of successful ones — a failure-injection harness for exercising the
// ORAM and controller error paths (a real SSD can and does fail
// mid-workload; the system must surface that, not corrupt state).
type Faulty struct {
	inner Device

	mu        sync.Mutex
	remaining int  // successful ops left before failing
	failing   bool // once true, every data op fails
}

// NewFaulty wraps inner; the device fails permanently after `successes`
// successful data operations (ReadAt/WriteAt/PeekAt/PokeAt).
func NewFaulty(inner Device, successes int) *Faulty {
	return &Faulty{inner: inner, remaining: successes}
}

// trip consumes one success credit; returns true when the op must fail.
func (f *Faulty) trip() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing {
		return true
	}
	if f.remaining <= 0 {
		f.failing = true
		return true
	}
	f.remaining--
	return false
}

// Tripped reports whether the device has started failing.
func (f *Faulty) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failing
}

// ReadAt implements Device.
func (f *Faulty) ReadAt(addr uint64, p []byte) (time.Duration, error) {
	if f.trip() {
		return 0, ErrInjected
	}
	return f.inner.ReadAt(addr, p)
}

// WriteAt implements Device.
func (f *Faulty) WriteAt(addr uint64, p []byte) (time.Duration, error) {
	if f.trip() {
		return 0, ErrInjected
	}
	return f.inner.WriteAt(addr, p)
}

// PeekAt implements Device.
func (f *Faulty) PeekAt(addr uint64, p []byte) error {
	if f.trip() {
		return ErrInjected
	}
	return f.inner.PeekAt(addr, p)
}

// PokeAt implements Device.
func (f *Faulty) PokeAt(addr uint64, p []byte) error {
	if f.trip() {
		return ErrInjected
	}
	return f.inner.PokeAt(addr, p)
}

// Charge implements Device (accounting never faults: it models time, not
// hardware).
func (f *Faulty) Charge(op Op, addr uint64, n int) time.Duration {
	return f.inner.Charge(op, addr, n)
}

// ChargeN implements Device.
func (f *Faulty) ChargeN(op Op, n, count int) time.Duration {
	return f.inner.ChargeN(op, n, count)
}

// Stats implements Device.
func (f *Faulty) Stats() Stats { return f.inner.Stats() }

// ResetStats implements Device.
func (f *Faulty) ResetStats() { f.inner.ResetStats() }

// Capacity implements Device.
func (f *Faulty) Capacity() uint64 { return f.inner.Capacity() }

// PageSize implements Device.
func (f *Faulty) PageSize() int { return f.inner.PageSize() }
