package device

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the sentinel every injected fault wraps. Callers match it
// with errors.Is(err, ErrInjected) at any depth of the ORAM call stack —
// injected errors are always wrapped (%w), never returned bare, so the
// wrapping layer can add op/address context without breaking detection.
var ErrInjected = errors.New("device: injected fault")

// Faulty wraps a Device and fails operations — a failure-injection harness
// for exercising the ORAM and controller error paths (a real SSD can and
// does fail mid-workload; the system must surface that, not corrupt
// state). Two modes:
//
//   - trip-after-N (NewFaulty): permanent failure once the success budget
//     is exhausted, modelling a dead device.
//   - seeded transient (NewTransientFaulty): each data op independently
//     fails with probability p from a deterministic seeded stream, then
//     the device recovers — modelling retryable media errors.
type Faulty struct {
	inner Device

	mu        sync.Mutex
	remaining int  // successful ops left before failing (trip mode)
	failing   bool // once true, every data op fails (trip mode)

	transient bool
	p         float64
	rng       *rand.Rand
}

// NewFaulty wraps inner; the device fails permanently after `successes`
// successful data operations (ReadAt/WriteAt/PeekAt/PokeAt).
func NewFaulty(inner Device, successes int) *Faulty {
	return &Faulty{inner: inner, remaining: successes}
}

// NewTransientFaulty wraps inner; each data operation independently fails
// with probability p, drawn from a deterministic stream seeded by seed,
// and the device recovers afterwards (the next op draws afresh).
func NewTransientFaulty(inner Device, p float64, seed int64) *Faulty {
	return &Faulty{inner: inner, transient: true, p: p, rng: rand.New(rand.NewSource(seed))}
}

// trip consumes one success credit (or one transient draw); returns true
// when the op must fail.
func (f *Faulty) trip() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.transient {
		return f.rng.Float64() < f.p
	}
	if f.failing {
		return true
	}
	if f.remaining <= 0 {
		f.failing = true
		return true
	}
	f.remaining--
	return false
}

// Tripped reports whether a trip-mode device has started failing.
// Transient devices never trip permanently.
func (f *Faulty) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failing
}

// injected builds the wrapped error for one failed operation.
func injected(op string, addr uint64) error {
	return fmt.Errorf("%s at %d: %w", op, addr, ErrInjected)
}

// ReadAt implements Device.
func (f *Faulty) ReadAt(addr uint64, p []byte) (time.Duration, error) {
	if f.trip() {
		return 0, injected("read", addr)
	}
	return f.inner.ReadAt(addr, p)
}

// WriteAt implements Device.
func (f *Faulty) WriteAt(addr uint64, p []byte) (time.Duration, error) {
	if f.trip() {
		return 0, injected("write", addr)
	}
	return f.inner.WriteAt(addr, p)
}

// PeekAt implements Device.
func (f *Faulty) PeekAt(addr uint64, p []byte) error {
	if f.trip() {
		return injected("peek", addr)
	}
	return f.inner.PeekAt(addr, p)
}

// PokeAt implements Device.
func (f *Faulty) PokeAt(addr uint64, p []byte) error {
	if f.trip() {
		return injected("poke", addr)
	}
	return f.inner.PokeAt(addr, p)
}

// Charge implements Device (accounting never faults: it models time, not
// hardware).
func (f *Faulty) Charge(op Op, addr uint64, n int) time.Duration {
	return f.inner.Charge(op, addr, n)
}

// ChargeN implements Device.
func (f *Faulty) ChargeN(op Op, n, count int) time.Duration {
	return f.inner.ChargeN(op, n, count)
}

// Stats implements Device.
func (f *Faulty) Stats() Stats { return f.inner.Stats() }

// ResetStats implements Device.
func (f *Faulty) ResetStats() { f.inner.ResetStats() }

// Capacity implements Device.
func (f *Faulty) Capacity() uint64 { return f.inner.Capacity() }

// PageSize implements Device.
func (f *Faulty) PageSize() int { return f.inner.PageSize() }
