package secagg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testSession(t *testing.T, n, length int) *Session {
	t.Helper()
	var key [32]byte
	key[0] = 0x5e
	s, err := NewSession(key, n, length)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) || math.Abs(float64(x)) > MaxAbs {
			return true // out of fixed-point range
		}
		got := Decode(Encode(x))
		return math.Abs(float64(got-x)) <= 1.0/Scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Negative values survive.
	if got := Decode(Encode(-1.5)); math.Abs(float64(got)+1.5) > 1e-4 {
		t.Errorf("Decode(Encode(-1.5)) = %v", got)
	}
}

func TestEncodeSaturates(t *testing.T) {
	if Decode(Encode(1e9)) < float32(MaxAbs)-1 {
		t.Error("positive saturation broken")
	}
	if Decode(Encode(-1e9)) > -float32(MaxAbs)+1 {
		t.Error("negative saturation broken")
	}
}

func TestSumRecoveredExactly(t *testing.T) {
	const n, length = 5, 64
	s := testSession(t, n, length)
	rng := rand.New(rand.NewSource(1))
	want := make([]float64, length)
	uploads := map[int][]uint32{}
	for i := 0; i < n; i++ {
		x := make([]float32, length)
		for w := range x {
			x[w] = float32(rng.NormFloat64())
			want[w] += float64(x[w])
		}
		up, err := s.Mask(i, x)
		if err != nil {
			t.Fatal(err)
		}
		uploads[i] = up
	}
	got, err := s.Aggregate(uploads, nil)
	if err != nil {
		t.Fatal(err)
	}
	for w := range got {
		if math.Abs(float64(got[w])-want[w]) > float64(n)/Scale+1e-6 {
			t.Fatalf("dim %d: got %v want %v", w, got[w], want[w])
		}
	}
}

func TestIndividualUploadLooksRandom(t *testing.T) {
	// A masked upload must not resemble the plaintext: with all-zero
	// input the upload words should be spread over the uint32 range.
	s := testSession(t, 3, 256)
	up, err := s.Mask(0, make([]float32, 256))
	if err != nil {
		t.Fatal(err)
	}
	small := 0
	for _, w := range up {
		if w < 1<<16 { // ~0.002% chance per word if uniform
			small++
		}
	}
	if small > 3 {
		t.Errorf("%d/256 mask words suspiciously small — masks missing?", small)
	}
}

func TestTwoClientMasksCancel(t *testing.T) {
	s := testSession(t, 2, 8)
	x0 := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	x1 := []float32{-1, -2, -3, -4, -5, -6, -7, -8}
	u0, _ := s.Mask(0, x0)
	u1, _ := s.Mask(1, x1)
	got, err := s.Aggregate(map[int][]uint32{0: u0, 1: u1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for w := range got {
		if math.Abs(float64(got[w])) > 1e-4 {
			t.Fatalf("dim %d: %v, want 0", w, got[w])
		}
	}
}

func TestDropoutUnmasking(t *testing.T) {
	const n, length = 4, 32
	s := testSession(t, n, length)
	rng := rand.New(rand.NewSource(2))
	want := make([]float64, length)
	uploads := map[int][]uint32{}
	for i := 0; i < n; i++ {
		x := make([]float32, length)
		for w := range x {
			x[w] = float32(rng.NormFloat64())
		}
		up, err := s.Mask(i, x)
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			continue // client 2 drops out after masking
		}
		uploads[i] = up
		for w := range x {
			want[w] += float64(x[w])
		}
	}
	got, err := s.Aggregate(uploads, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	for w := range got {
		if math.Abs(float64(got[w])-want[w]) > float64(n)/Scale+1e-6 {
			t.Fatalf("dim %d: got %v want %v", w, got[w], want[w])
		}
	}
}

func TestMultipleDropouts(t *testing.T) {
	const n, length = 6, 16
	s := testSession(t, n, length)
	uploads := map[int][]uint32{}
	var want float64
	for i := 0; i < n; i++ {
		x := make([]float32, length)
		x[0] = float32(i)
		up, err := s.Mask(i, x)
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 || i == 4 {
			continue
		}
		uploads[i] = up
		want += float64(i)
	}
	got, err := s.Aggregate(uploads, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got[0])-want) > 1e-3 {
		t.Errorf("got %v want %v", got[0], want)
	}
}

func TestValidation(t *testing.T) {
	var key [32]byte
	if _, err := NewSession(key, 1, 8); err == nil {
		t.Error("single-client session accepted")
	}
	if _, err := NewSession(key, 3, 0); err == nil {
		t.Error("zero-length session accepted")
	}
	s := testSession(t, 3, 8)
	if _, err := s.Mask(3, make([]float32, 8)); err == nil {
		t.Error("out-of-roster client accepted")
	}
	if _, err := s.Mask(0, make([]float32, 7)); err == nil {
		t.Error("wrong-length vector accepted")
	}
	if _, err := s.Aggregate(nil, nil); err == nil {
		t.Error("empty aggregation accepted")
	}
	u, _ := s.Mask(0, make([]float32, 8))
	if _, err := s.Aggregate(map[int][]uint32{0: u}, []int{0}); err == nil {
		t.Error("upload+dropout conflict accepted")
	}
	if _, err := s.Aggregate(map[int][]uint32{0: u}, []int{9}); err == nil {
		t.Error("out-of-roster dropout accepted")
	}
	if _, err := s.Aggregate(map[int][]uint32{0: u[:4]}, nil); err == nil {
		t.Error("short upload accepted")
	}
}

func TestPairSeedSymmetric(t *testing.T) {
	var key [32]byte
	if pairSeed(key, 2, 7) != pairSeed(key, 7, 2) {
		t.Error("pair seed not symmetric")
	}
	if pairSeed(key, 2, 7) == pairSeed(key, 2, 8) {
		t.Error("distinct pairs share a seed")
	}
}

func TestPRGDeterministicAndSpread(t *testing.T) {
	var seed [32]byte
	seed[5] = 1
	a := prg(seed, 100)
	b := prg(seed, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PRG not deterministic")
		}
	}
	// Rough uniformity: mean of 100 words near 2^31.
	var sum float64
	for _, w := range a {
		sum += float64(w)
	}
	mean := sum / 100
	center := float64(uint64(1) << 31)
	if mean < 0.8*center || mean > 1.2*center {
		t.Errorf("PRG mean %v far from 2^31", mean)
	}
}
