// Package secagg implements pairwise-masking secure aggregation
// (Bonawitz et al., CCS'17 — reference [8] of the FEDORA paper), the
// standard FL companion mechanism that hides individual client updates
// from the server and reveals only their sum. FEDORA is explicitly
// compatible with SecAgg (Sec 2.2): the dense-model deltas (and, with
// the buffer ORAM handling row alignment, embedding gradients) can be
// uploaded masked.
//
// Protocol (honest-but-curious server, the paper's threat model):
//
//  1. Every pair of participating clients (i, j) agrees on a shared seed
//     s_ij (here: derived from pre-provisioned pairwise keys; a real
//     deployment runs Diffie-Hellman through the server).
//  2. Client i uploads y_i = x_i + Σ_{j>i} PRG(s_ij) − Σ_{j<i} PRG(s_ij)
//     (mod 2³², fixed-point encoded). Each mask appears once positively
//     and once negatively, so Σ y_i = Σ x_i while every individual y_i
//     is uniformly random to the server.
//  3. If a client drops out after masks were committed, the survivors
//     reveal their shared seeds with the dropout so the server can
//     subtract the orphaned masks (the "unmasking" round).
//
// Arithmetic is exact in uint32 fixed point so masking is perfectly
// invertible; the fixed-point scale bounds the value range.
package secagg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"crypto/sha256"
)

// Scale is the fixed-point resolution: values are encoded as
// round(x · Scale) in two's-complement uint32 arithmetic.
const Scale = 1 << 16

// MaxAbs is the largest representable magnitude.
const MaxAbs = float64(math.MaxInt32) / Scale

// ErrOutOfRange reports a value whose fixed-point encoding saturated.
// Saturation breaks the exact-sum invariant silently (the sum of
// saturated encodings is not the encoding of the sum), so callers that
// care use EncodeChecked or EncodeCounting and surface the counter —
// a non-zero count means the fixed-point Scale is misconfigured for the
// gradient magnitudes in play.
var ErrOutOfRange = errors.New("secagg: value exceeds fixed-point range")

// Encode converts a float to fixed point (saturating).
func Encode(x float32) uint32 {
	v, _ := encode(x)
	return v
}

// EncodeChecked converts a float to fixed point, returning ErrOutOfRange
// instead of silently clipping when the value saturates.
func EncodeChecked(x float32) (uint32, error) {
	v, sat := encode(x)
	if sat {
		return v, fmt.Errorf("%w: |%g| > %g", ErrOutOfRange, x, MaxAbs)
	}
	return v, nil
}

// EncodeCounting converts a float to fixed point, incrementing *sats
// when the value saturated. The encoding still clips (so aggregation
// proceeds); the counter makes the clipping observable.
func EncodeCounting(x float32, sats *int) uint32 {
	v, sat := encode(x)
	if sat {
		*sats++
	}
	return v
}

func encode(x float32) (uint32, bool) {
	v := float64(x) * Scale
	if v > math.MaxInt32 {
		return 0x7FFFFFFF, true
	}
	if v < math.MinInt32 {
		return 0x80000000, true
	}
	return uint32(int32(v)), false
}

// Decode converts fixed point back to float.
func Decode(v uint32) float32 {
	return float32(int32(v)) / Scale
}

// PairSeed derives the shared seed for the (i, j) client pair from a
// session key. Symmetric in (i, j). Exported for the wire upload plane
// (internal/wire), which reveals exactly these seeds in the dropout-
// unmasking round.
func PairSeed(sessionKey [32]byte, i, j int) [32]byte {
	if i > j {
		i, j = j, i
	}
	var buf [48]byte
	copy(buf[:32], sessionKey[:])
	binary.LittleEndian.PutUint64(buf[32:40], uint64(i))
	binary.LittleEndian.PutUint64(buf[40:48], uint64(j))
	return sha256.Sum256(buf[:])
}

// pairSeed is the unexported alias the Session methods use.
func pairSeed(sessionKey [32]byte, i, j int) [32]byte { return PairSeed(sessionKey, i, j) }

// PRG expands a seed into length uint32 mask words (SHA-256 in counter
// mode; stdlib-only and deterministic). Exported for the wire upload
// plane, which masks word vectors of arbitrary layout with the same
// stream the Session uses.
func PRG(seed [32]byte, length int) []uint32 {
	out := make([]uint32, length)
	var block [36]byte
	copy(block[:32], seed[:])
	for i := 0; i < length; i += 8 {
		binary.LittleEndian.PutUint32(block[32:36], uint32(i/8))
		h := sha256.Sum256(block[:])
		for w := 0; w < 8 && i+w < length; w++ {
			out[i+w] = binary.LittleEndian.Uint32(h[w*4 : w*4+4])
		}
	}
	return out
}

// prg is the unexported alias the Session methods use.
func prg(seed [32]byte, length int) []uint32 { return PRG(seed, length) }

// AddPairwiseMasks folds client i's pairwise masks into words in place:
// +PRG(s_ij) for every roster partner j > i, −PRG(s_ij) for j < i. Over
// a full roster the masks cancel word-for-word; MaskWords(Words(x)) is
// exactly what Session.Mask produces, factored out so the wire plane
// can mask word vectors with its own layout.
func AddPairwiseMasks(words []uint32, sessionKey [32]byte, i, roster int) {
	for j := 0; j < roster; j++ {
		if j == i {
			continue
		}
		mask := PRG(PairSeed(sessionKey, i, j), len(words))
		if j > i {
			for w := range words {
				words[w] += mask[w]
			}
		} else {
			for w := range words {
				words[w] -= mask[w]
			}
		}
	}
}

// SubtractOrphanMask removes the orphaned (survivor, dropout) pair mask
// from an aggregated word sum, given the revealed pair seed: survivor
// added +mask if dropout > survivor, −mask otherwise, so the correction
// applies the opposite sign.
func SubtractOrphanMask(sum []uint32, pairSeed [32]byte, survivor, dropout int) {
	mask := PRG(pairSeed, len(sum))
	if dropout > survivor {
		for w := range sum {
			sum[w] -= mask[w]
		}
	} else {
		for w := range sum {
			sum[w] += mask[w]
		}
	}
}

// Session is one aggregation round among a fixed roster of clients.
type Session struct {
	sessionKey [32]byte
	n          int
	length     int
}

// NewSession creates a session for n clients aggregating vectors of the
// given length. The session key models the key agreement transcript.
func NewSession(sessionKey [32]byte, n, length int) (*Session, error) {
	if n < 2 {
		return nil, errors.New("secagg: need at least 2 clients")
	}
	if length <= 0 {
		return nil, errors.New("secagg: vector length must be positive")
	}
	return &Session{sessionKey: sessionKey, n: n, length: length}, nil
}

// Mask produces client i's upload: the fixed-point encoding of x plus
// the pairwise masks. len(x) must equal the session length.
func (s *Session) Mask(i int, x []float32) ([]uint32, error) {
	out, _, err := s.MaskCounting(i, x)
	return out, err
}

// MaskCounting is Mask with saturation accounting: it additionally
// reports how many coordinates of x exceeded the fixed-point range and
// were clipped. A non-zero count means the aggregate is silently wrong
// at the clipped coordinates — surface it (see ErrOutOfRange).
func (s *Session) MaskCounting(i int, x []float32) ([]uint32, int, error) {
	if i < 0 || i >= s.n {
		return nil, 0, fmt.Errorf("secagg: client %d out of roster %d", i, s.n)
	}
	if len(x) != s.length {
		return nil, 0, fmt.Errorf("secagg: vector length %d != %d", len(x), s.length)
	}
	out := make([]uint32, s.length)
	sats := 0
	for w, xi := range x {
		out[w] = EncodeCounting(xi, &sats)
	}
	AddPairwiseMasks(out, s.sessionKey, i, s.n)
	return out, sats, nil
}

// Aggregate sums the uploads of the surviving clients and unmasks the
// orphaned pair masks of dropouts. uploads maps client index → masked
// vector; dropouts lists roster members that never uploaded (their seeds
// with every survivor are revealed and subtracted).
func (s *Session) Aggregate(uploads map[int][]uint32, dropouts []int) ([]float32, error) {
	if len(uploads) == 0 {
		return nil, errors.New("secagg: no uploads")
	}
	dropped := map[int]bool{}
	for _, d := range dropouts {
		if d < 0 || d >= s.n {
			return nil, fmt.Errorf("secagg: dropout %d out of roster", d)
		}
		dropped[d] = true
	}
	sum := make([]uint32, s.length)
	for i, up := range uploads {
		if i < 0 || i >= s.n {
			return nil, fmt.Errorf("secagg: upload from unknown client %d", i)
		}
		if dropped[i] {
			return nil, fmt.Errorf("secagg: client %d both uploaded and dropped", i)
		}
		if len(up) != s.length {
			return nil, fmt.Errorf("secagg: upload length %d != %d", len(up), s.length)
		}
		for w := range sum {
			sum[w] += up[w]
		}
	}
	// Remove masks that never found their partner: each survivor i holds
	// a mask with every dropout d. If d > i the survivor added +mask; if
	// d < i the survivor added −mask. Subtract accordingly.
	for i := range uploads {
		for d := range dropped {
			mask := prg(pairSeed(s.sessionKey, i, d), s.length)
			if d > i {
				for w := range sum {
					sum[w] -= mask[w]
				}
			} else {
				for w := range sum {
					sum[w] += mask[w]
				}
			}
		}
	}
	out := make([]float32, s.length)
	for w := range sum {
		out[w] = Decode(sum[w])
	}
	return out, nil
}
