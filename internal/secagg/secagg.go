// Package secagg implements pairwise-masking secure aggregation
// (Bonawitz et al., CCS'17 — reference [8] of the FEDORA paper), the
// standard FL companion mechanism that hides individual client updates
// from the server and reveals only their sum. FEDORA is explicitly
// compatible with SecAgg (Sec 2.2): the dense-model deltas (and, with
// the buffer ORAM handling row alignment, embedding gradients) can be
// uploaded masked.
//
// Protocol (honest-but-curious server, the paper's threat model):
//
//  1. Every pair of participating clients (i, j) agrees on a shared seed
//     s_ij (here: derived from pre-provisioned pairwise keys; a real
//     deployment runs Diffie-Hellman through the server).
//  2. Client i uploads y_i = x_i + Σ_{j>i} PRG(s_ij) − Σ_{j<i} PRG(s_ij)
//     (mod 2³², fixed-point encoded). Each mask appears once positively
//     and once negatively, so Σ y_i = Σ x_i while every individual y_i
//     is uniformly random to the server.
//  3. If a client drops out after masks were committed, the survivors
//     reveal their shared seeds with the dropout so the server can
//     subtract the orphaned masks (the "unmasking" round).
//
// Arithmetic is exact in uint32 fixed point so masking is perfectly
// invertible; the fixed-point scale bounds the value range.
package secagg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"crypto/sha256"
)

// Scale is the fixed-point resolution: values are encoded as
// round(x · Scale) in two's-complement uint32 arithmetic.
const Scale = 1 << 16

// MaxAbs is the largest representable magnitude.
const MaxAbs = float64(math.MaxInt32) / Scale

// Encode converts a float to fixed point (saturating).
func Encode(x float32) uint32 {
	v := float64(x) * Scale
	if v > math.MaxInt32 {
		v = math.MaxInt32
	}
	if v < math.MinInt32 {
		v = math.MinInt32
	}
	return uint32(int32(v))
}

// Decode converts fixed point back to float.
func Decode(v uint32) float32 {
	return float32(int32(v)) / Scale
}

// pairSeed derives the shared seed for the (i, j) client pair from a
// session key. Symmetric in (i, j).
func pairSeed(sessionKey [32]byte, i, j int) [32]byte {
	if i > j {
		i, j = j, i
	}
	var buf [48]byte
	copy(buf[:32], sessionKey[:])
	binary.LittleEndian.PutUint64(buf[32:40], uint64(i))
	binary.LittleEndian.PutUint64(buf[40:48], uint64(j))
	return sha256.Sum256(buf[:])
}

// prg expands a seed into length uint32 mask words (SHA-256 in counter
// mode; stdlib-only and deterministic).
func prg(seed [32]byte, length int) []uint32 {
	out := make([]uint32, length)
	var block [36]byte
	copy(block[:32], seed[:])
	for i := 0; i < length; i += 8 {
		binary.LittleEndian.PutUint32(block[32:36], uint32(i/8))
		h := sha256.Sum256(block[:])
		for w := 0; w < 8 && i+w < length; w++ {
			out[i+w] = binary.LittleEndian.Uint32(h[w*4 : w*4+4])
		}
	}
	return out
}

// Session is one aggregation round among a fixed roster of clients.
type Session struct {
	sessionKey [32]byte
	n          int
	length     int
}

// NewSession creates a session for n clients aggregating vectors of the
// given length. The session key models the key agreement transcript.
func NewSession(sessionKey [32]byte, n, length int) (*Session, error) {
	if n < 2 {
		return nil, errors.New("secagg: need at least 2 clients")
	}
	if length <= 0 {
		return nil, errors.New("secagg: vector length must be positive")
	}
	return &Session{sessionKey: sessionKey, n: n, length: length}, nil
}

// Mask produces client i's upload: the fixed-point encoding of x plus
// the pairwise masks. len(x) must equal the session length.
func (s *Session) Mask(i int, x []float32) ([]uint32, error) {
	if i < 0 || i >= s.n {
		return nil, fmt.Errorf("secagg: client %d out of roster %d", i, s.n)
	}
	if len(x) != s.length {
		return nil, fmt.Errorf("secagg: vector length %d != %d", len(x), s.length)
	}
	out := make([]uint32, s.length)
	for w, xi := range x {
		out[w] = Encode(xi)
	}
	for j := 0; j < s.n; j++ {
		if j == i {
			continue
		}
		mask := prg(pairSeed(s.sessionKey, i, j), s.length)
		if j > i {
			for w := range out {
				out[w] += mask[w]
			}
		} else {
			for w := range out {
				out[w] -= mask[w]
			}
		}
	}
	return out, nil
}

// Aggregate sums the uploads of the surviving clients and unmasks the
// orphaned pair masks of dropouts. uploads maps client index → masked
// vector; dropouts lists roster members that never uploaded (their seeds
// with every survivor are revealed and subtracted).
func (s *Session) Aggregate(uploads map[int][]uint32, dropouts []int) ([]float32, error) {
	if len(uploads) == 0 {
		return nil, errors.New("secagg: no uploads")
	}
	dropped := map[int]bool{}
	for _, d := range dropouts {
		if d < 0 || d >= s.n {
			return nil, fmt.Errorf("secagg: dropout %d out of roster", d)
		}
		dropped[d] = true
	}
	sum := make([]uint32, s.length)
	for i, up := range uploads {
		if i < 0 || i >= s.n {
			return nil, fmt.Errorf("secagg: upload from unknown client %d", i)
		}
		if dropped[i] {
			return nil, fmt.Errorf("secagg: client %d both uploaded and dropped", i)
		}
		if len(up) != s.length {
			return nil, fmt.Errorf("secagg: upload length %d != %d", len(up), s.length)
		}
		for w := range sum {
			sum[w] += up[w]
		}
	}
	// Remove masks that never found their partner: each survivor i holds
	// a mask with every dropout d. If d > i the survivor added +mask; if
	// d < i the survivor added −mask. Subtract accordingly.
	for i := range uploads {
		for d := range dropped {
			mask := prg(pairSeed(s.sessionKey, i, d), s.length)
			if d > i {
				for w := range sum {
					sum[w] -= mask[w]
				}
			} else {
				for w := range sum {
					sum[w] += mask[w]
				}
			}
		}
	}
	out := make([]float32, s.length)
	for w := range sum {
		out[w] = Decode(sum[w])
	}
	return out, nil
}
