package tee

import (
	"testing"
)

func TestScratchpadSnapshotRoundTrip(t *testing.T) {
	a := NewScratchpad(4096)
	if err := a.Reserve("key", 32); err != nil {
		t.Fatal(err)
	}
	if err := a.Reserve("root-counter", 8); err != nil {
		t.Fatal(err)
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := NewScratchpad(4096)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if b.Free() != a.Free() {
		t.Fatalf("free %d, want %d", b.Free(), a.Free())
	}
	// Restored reservations behave like the originals: re-reserving an
	// existing region fails, a fresh one within the free space works.
	if err := b.Reserve("key", 1); err == nil {
		t.Fatal("duplicate reservation accepted after restore")
	}
	if err := b.Reserve("extra", b.Free()); err != nil {
		t.Fatalf("free-space reservation rejected after restore: %v", err)
	}
}

func TestScratchpadRestoreGuards(t *testing.T) {
	a := NewScratchpad(4096)
	a.Reserve("key", 32)
	snap, _ := a.Snapshot()
	if err := NewScratchpad(2048).Restore(snap); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := NewScratchpad(4096).Restore(snap[:2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestEngineSnapshotRoundTrip(t *testing.T) {
	var key [32]byte
	key[0] = 9
	a := NewEngine(key)
	sealed := a.Seal([]byte("secret block bytes"), 3, 7)
	if _, err := a.Open(sealed, 3, 7); err != nil {
		t.Fatal(err)
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := NewEngine(key)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats %+v, want %+v", b.Stats(), a.Stats())
	}
	// Keys are construction-time config, not snapshot state: the restored
	// engine still opens data sealed by the original.
	if _, err := b.Open(sealed, 3, 7); err != nil {
		t.Fatalf("restored engine cannot open: %v", err)
	}
}
