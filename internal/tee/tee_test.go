package tee

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func testEngine() *Engine {
	var key [32]byte
	for i := range key {
		key[i] = byte(i * 7)
	}
	return NewEngine(key)
}

func TestSealOpenRoundTrip(t *testing.T) {
	e := testEngine()
	msg := []byte("embedding row payload 0123456789")
	sealed := e.Seal(msg, 42, 7)
	if len(sealed) != SealedSize(len(msg)) {
		t.Errorf("sealed length = %d, want %d", len(sealed), SealedSize(len(msg)))
	}
	got, err := e.Open(sealed, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("round trip mismatch: %q", got)
	}
}

func TestSealOpenPropertyRandom(t *testing.T) {
	e := testEngine()
	f := func(msg []byte, groupID, counter uint64) bool {
		sealed := e.Seal(msg, groupID, counter)
		got, err := e.Open(sealed, groupID, counter)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	e := testEngine()
	msg := bytes.Repeat([]byte{0xAB}, 64)
	sealed := e.Seal(msg, 1, 1)
	if bytes.Contains(sealed, msg[:16]) {
		t.Error("ciphertext contains plaintext prefix")
	}
}

func TestSameCounterSamePlaintextDeterministic(t *testing.T) {
	e := testEngine()
	a := e.Seal([]byte("x"), 3, 9)
	b := e.Seal([]byte("x"), 3, 9)
	if !bytes.Equal(a, b) {
		t.Error("seal is not deterministic for identical inputs")
	}
	c := e.Seal([]byte("x"), 3, 10)
	if bytes.Equal(a, c) {
		t.Error("counter change did not change ciphertext")
	}
}

func TestTamperDetection(t *testing.T) {
	e := testEngine()
	sealed := e.Seal([]byte("secret block"), 5, 1)
	for flip := 0; flip < len(sealed); flip += 3 {
		mut := append([]byte(nil), sealed...)
		mut[flip] ^= 0x01
		if _, err := e.Open(mut, 5, 1); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("bit flip at %d not detected", flip)
		}
	}
}

func TestReplayDetection(t *testing.T) {
	e := testEngine()
	old := e.Seal([]byte("version 1"), 8, 1)
	_ = e.Seal([]byte("version 2"), 8, 2)
	// Adversary replays the old ciphertext; controller opens with the
	// current counter (2) and must reject.
	if _, err := e.Open(old, 8, 2); !errors.Is(err, ErrAuthFailed) {
		t.Error("replay under stale counter not detected")
	}
}

func TestWrongGroupRejected(t *testing.T) {
	e := testEngine()
	sealed := e.Seal([]byte("block"), 10, 1)
	if _, err := e.Open(sealed, 11, 1); !errors.Is(err, ErrAuthFailed) {
		t.Error("relocation to another group not detected")
	}
}

func TestShortCiphertextRejected(t *testing.T) {
	e := testEngine()
	if _, err := e.Open(make([]byte, TagSize-1), 0, 0); !errors.Is(err, ErrAuthFailed) {
		t.Error("short ciphertext accepted")
	}
}

func TestEngineStats(t *testing.T) {
	e := testEngine()
	sealed := e.Seal(make([]byte, 100), 1, 1)
	if _, err := e.Open(sealed, 1, 1); err != nil {
		t.Fatal(err)
	}
	_, _ = e.Open(sealed, 1, 2) // auth failure
	st := e.Stats()
	if st.BytesSealed != 100 || st.BytesOpened != 100 ||
		st.GroupsSealed != 1 || st.GroupsOpened != 1 || st.AuthFailures != 1 {
		t.Errorf("stats = %+v", st)
	}
	e.ResetStats()
	if e.Stats() != (EngineStats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestDifferentKeysDifferentCiphertext(t *testing.T) {
	var k1, k2 [32]byte
	k2[0] = 1
	a := NewEngine(k1).Seal([]byte("msg"), 0, 0)
	b := NewEngine(k2).Seal([]byte("msg"), 0, 0)
	if bytes.Equal(a, b) {
		t.Error("different keys produced identical ciphertext")
	}
	if _, err := NewEngine(k2).Open(a, 0, 0); !errors.Is(err, ErrAuthFailed) {
		t.Error("cross-key open succeeded")
	}
}

func TestScratchpadReserve(t *testing.T) {
	sp := NewScratchpad(100)
	if err := sp.Reserve("key", 32); err != nil {
		t.Fatal(err)
	}
	if err := sp.Reserve("root-counter", 8); err != nil {
		t.Fatal(err)
	}
	if sp.Free() != 60 {
		t.Errorf("Free = %d, want 60", sp.Free())
	}
	if err := sp.Reserve("scratch", 61); !errors.Is(err, ErrScratchpadFull) {
		t.Errorf("over-reservation err = %v", err)
	}
	if err := sp.Reserve("key", 1); err == nil {
		t.Error("duplicate region name accepted")
	}
	sp.Release("key")
	if sp.Free() != 92 {
		t.Errorf("Free after release = %d", sp.Free())
	}
	if err := sp.Reserve("scratch", 92); err != nil {
		t.Errorf("reserve after release failed: %v", err)
	}
}

func TestScratchpadZeroSize(t *testing.T) {
	sp := NewScratchpad(0)
	if err := sp.Reserve("anything", 1); err == nil {
		t.Error("reservation on zero-size scratchpad succeeded")
	}
	if err := sp.Reserve("nothing", 0); err != nil {
		t.Errorf("zero-byte reservation failed: %v", err)
	}
}

func TestScratchpadNegativeReservation(t *testing.T) {
	sp := NewScratchpad(10)
	if err := sp.Reserve("bad", -5); err == nil {
		t.Error("negative reservation accepted")
	}
}

func TestDefaultScratchpadFitsPaperContents(t *testing.T) {
	// The paper stores the key, the root counter, and an eviction scratch
	// region in 4 KB (Sec 5.1).
	sp := NewScratchpad(DefaultScratchpadSize)
	if err := sp.Reserve("key", 32); err != nil {
		t.Fatal(err)
	}
	if err := sp.Reserve("root-counter", 8); err != nil {
		t.Fatal(err)
	}
	if err := sp.Reserve("eviction-scratch", sp.Free()); err != nil {
		t.Fatal(err)
	}
	if sp.Free() != 0 {
		t.Errorf("Free = %d", sp.Free())
	}
}

func TestGroupLayoutOverhead(t *testing.T) {
	l := NewGroupLayout(DefaultGroupSize, 2)
	// 2 child counters (16 B) + tag (16 B) over 512 B payload = 6.25%.
	if got := l.OverheadRatio(); got < 0.06 || got > 0.07 {
		t.Errorf("OverheadRatio = %v", got)
	}
	// Paper claims ~8× improvement over per-cache-line counters.
	improvement := PerCacheLineOverheadRatio() / l.OverheadRatio()
	if improvement < 5 || improvement > 9 {
		t.Errorf("improvement over per-line = %.1f×, expected ~6-8×", improvement)
	}
}

func TestParentChildCounterChain(t *testing.T) {
	// Integration-style check of the Sec 5.2 scheme: the child counter is
	// stored inside the parent group; corrupting the stored child counter
	// makes the parent fail verification, and replaying an old child under
	// the (authentic) current counter fails on the child.
	e := testEngine()
	childCtr := uint64(1)
	child := e.Seal([]byte("child-payload"), 2, childCtr)
	parentPlain := append([]byte("parent-payload"), byte(childCtr)) // counter embedded
	parent := e.Seal(parentPlain, 1, 1)

	// Normal chain decrypts fine.
	pp, err := e.Open(parent, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotCtr := uint64(pp[len(pp)-1])
	if _, err := e.Open(child, 2, gotCtr); err != nil {
		t.Fatal(err)
	}

	// Adversary rolls the child back after an update.
	childCtr = 2
	_ = e.Seal([]byte("child-payload-v2"), 2, childCtr)
	parentPlain[len(parentPlain)-1] = byte(childCtr)
	parent = e.Seal(parentPlain, 1, 2)
	pp, err = e.Open(parent, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotCtr = uint64(pp[len(pp)-1])
	if _, err := e.Open(child /* stale v1 */, 2, gotCtr); !errors.Is(err, ErrAuthFailed) {
		t.Error("stale child accepted under fresh parent counter")
	}
}

func BenchmarkSeal4K(b *testing.B) {
	e := testEngine()
	buf := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(buf)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Seal(buf, uint64(i), uint64(i))
	}
}
