package tee

import (
	"encoding/binary"
	"errors"
	"testing"
)

// This file is the integrity-failure table: every place an adversary (or
// a flipped SSD/SRAM bit — see internal/fault) can corrupt protected
// state, in both freshness schemes the repo implements, must surface as
// the typed ErrAuthFailed so the shard engine can quarantine on it.
//
//	corruption target      counter-group (Sec 5.2)      Merkle (Sec 5.1 baseline)
//	ciphertext             child group tag mismatch     leaf digest mismatch
//	stored child counter   PARENT group tag mismatch    stored digest mismatch
//	auth tag               child group tag mismatch     leaf digest mismatch
//	root (scratchpad)      root-sealed group mismatch   root digest mismatch

// ctrChain is the minimal Sec 5.2 hierarchy: the root counter lives in
// the (trusted) scratchpad and seals the parent group; the parent group
// stores the child group's counter; the child group holds the payload.
type ctrChain struct {
	e       *Engine
	rootCtr uint64 // scratchpad-resident, trusted
	parent  []byte // sealed under (groupID 1, rootCtr); plaintext = child counter
	child   []byte // sealed under (groupID 2, childCtr); plaintext = payload
}

func newCtrChain(t *testing.T) *ctrChain {
	t.Helper()
	c := &ctrChain{e: testEngine(), rootCtr: 5}
	const childCtr = 9
	c.child = c.e.Seal([]byte("bucket-payload-0123456789abcdef"), 2, childCtr)
	var pp [CounterSize]byte
	binary.LittleEndian.PutUint64(pp[:], childCtr)
	c.parent = c.e.Seal(pp[:], 1, c.rootCtr)
	if err := c.verify(); err != nil {
		t.Fatalf("fresh chain must verify: %v", err)
	}
	return c
}

// verify walks the chain the way an ORAM path read does: open the parent
// under the trusted root counter, extract the child's counter from it,
// then open the child under that counter.
func (c *ctrChain) verify() error {
	pp, err := c.e.Open(c.parent, 1, c.rootCtr)
	if err != nil {
		return err
	}
	childCtr := binary.LittleEndian.Uint64(pp[:CounterSize])
	_, err = c.e.Open(c.child, 2, childCtr)
	return err
}

// merkleStore is the Sec 5.1 baseline: sealed groups live in untrusted
// memory as Merkle leaves; only the root digest is trusted.
type merkleStore struct {
	tree   *MerkleTree
	leaves [][]byte
}

func newMerkleStore(t *testing.T) *merkleStore {
	t.Helper()
	e := testEngine()
	const n, payload = 4, 32
	tree, err := NewMerkleTree(n, SealedSize(payload))
	if err != nil {
		t.Fatal(err)
	}
	m := &merkleStore{tree: tree}
	for i := 0; i < n; i++ {
		plain := make([]byte, payload)
		plain[0] = byte(i)
		leaf := e.Seal(plain, uint64(i), 1)
		if err := tree.Update(i, leaf); err != nil {
			t.Fatal(err)
		}
		m.leaves = append(m.leaves, leaf)
	}
	if err := m.verify(); err != nil {
		t.Fatalf("fresh merkle store must verify: %v", err)
	}
	return m
}

func (m *merkleStore) verify() error {
	for i, leaf := range m.leaves {
		if err := m.tree.Verify(i, leaf); err != nil {
			return err
		}
	}
	return nil
}

// TestIntegrityCorruptionTable corrupts each protected location in each
// scheme and asserts the typed detection the quarantine path keys on.
func TestIntegrityCorruptionTable(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T) error
	}{
		{"counter-group/ciphertext", func(t *testing.T) error {
			c := newCtrChain(t)
			c.child[0] ^= 0x01 // flip a bit in the child's ciphertext body
			return c.verify()
		}},
		{"counter-group/stored-child-counter", func(t *testing.T) error {
			c := newCtrChain(t)
			// The child counter is stored inside the parent group, so
			// tampering with it is caught when the PARENT fails to verify —
			// the whole point of the Sec 5.2 design.
			c.parent[0] ^= 0x01
			return c.verify()
		}},
		{"counter-group/auth-tag", func(t *testing.T) error {
			c := newCtrChain(t)
			c.child[len(c.child)-1] ^= 0x80 // flip a bit in the trailing tag
			return c.verify()
		}},
		{"counter-group/root-scratchpad-counter", func(t *testing.T) error {
			c := newCtrChain(t)
			// An SRAM bit flip (or rollback) of the trusted root counter:
			// the parent was sealed under the old value, so it no longer
			// opens. Nothing downstream is ever trusted.
			c.rootCtr ^= 1
			return c.verify()
		}},
		{"merkle/ciphertext", func(t *testing.T) error {
			m := newMerkleStore(t)
			m.leaves[2][0] ^= 0x01
			return m.verify()
		}},
		{"merkle/stored-child-counter", func(t *testing.T) error {
			m := newMerkleStore(t)
			// The Merkle analog of a stored counter is an interior digest
			// in untrusted memory; corrupt one with the test hook.
			m.tree.CorruptStoredDigest(1, 0)
			return m.verify()
		}},
		{"merkle/auth-tag", func(t *testing.T) error {
			m := newMerkleStore(t)
			leaf := m.leaves[1]
			leaf[len(leaf)-1] ^= 0x80
			return m.verify()
		}},
		{"merkle/root-scratchpad-counter", func(t *testing.T) error {
			m := newMerkleStore(t)
			// The root digest is the Merkle scheme's scratchpad-resident
			// trust anchor.
			m.tree.CorruptStoredDigest(m.tree.Depth(), 0)
			return m.verify()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if err == nil {
				t.Fatal("corruption went undetected")
			}
			if !errors.Is(err, ErrAuthFailed) {
				t.Fatalf("err = %v, want ErrAuthFailed (typed detection)", err)
			}
		})
	}
}
