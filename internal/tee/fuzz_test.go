package tee

import (
	"bytes"
	"testing"
)

// FuzzOpen feeds arbitrary ciphertexts to the decryption path: it must
// reject everything not produced by Seal under the same identity, and
// must round-trip everything that was.
func FuzzOpen(f *testing.F) {
	var key [32]byte
	key[0] = 7
	e := NewEngine(key)
	f.Add(e.Seal([]byte("hello"), 1, 2), uint64(1), uint64(2))
	f.Add([]byte{}, uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, sealed []byte, groupID, counter uint64) {
		plain, err := e.Open(sealed, groupID, counter)
		if err != nil {
			return
		}
		// Anything that authenticates must re-seal to the same ciphertext
		// (Seal is deterministic per (groupID, counter)).
		again := e.Seal(plain, groupID, counter)
		if !bytes.Equal(again, sealed) {
			t.Fatalf("authenticated forgery: %x reopened as %x", sealed, plain)
		}
	})
}
