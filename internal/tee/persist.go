package tee

import (
	"fmt"
	"sort"

	"repro/internal/persist"
)

// The TEE's durable state is small by design (Sec 5.2): the scratchpad
// reservations (which components own the on-chip SRAM) and the engine's
// crypto-work counters. The per-group write counters themselves are ORAM
// state and are serialized by the ORAM snapshots; the ROOT counter — the
// single scratchpad-resident value every bucket counter derives from —
// is the RAW ORAM's eviction count, captured in its snapshot.

const (
	scratchpadSnapshotVersion = 1
	engineSnapshotVersion     = 1
)

// Snapshot serializes the reservation table (sorted by name).
func (s *Scratchpad) Snapshot() ([]byte, error) {
	var e persist.Encoder
	e.U8(scratchpadSnapshotVersion)
	e.I64(int64(s.size))
	names := make([]string, 0, len(s.regions))
	for name := range s.regions {
		names = append(names, name)
	}
	sort.Strings(names)
	e.U64(uint64(len(names)))
	for _, name := range names {
		e.String(name)
		e.I64(int64(s.regions[name]))
	}
	return e.Finish(), nil
}

// Restore replaces the reservation table from a same-size snapshot.
func (s *Scratchpad) Restore(b []byte) error {
	d := persist.NewDecoder(b)
	if v := d.U8(); d.Err() == nil && v != scratchpadSnapshotVersion {
		return fmt.Errorf("tee: unsupported scratchpad snapshot version %d", v)
	}
	size := int(d.I64())
	if d.Err() == nil && size != s.size {
		return fmt.Errorf("tee: snapshot scratchpad size %d != %d", size, s.size)
	}
	n := d.U64()
	regions := make(map[string]int, n)
	reserved := 0
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		name := d.String()
		bytes := int(d.I64())
		if d.Err() == nil {
			if bytes < 0 || reserved+bytes > size {
				return fmt.Errorf("tee: snapshot reservation %q (%d bytes) exceeds scratchpad", name, bytes)
			}
			regions[name] = bytes
			reserved += bytes
		}
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("tee: scratchpad snapshot: %w", err)
	}
	s.regions = regions
	s.reserved = reserved
	return nil
}

// Snapshot serializes the crypto-work counters. The keys are derived
// from configuration at construction and are deliberately NOT written to
// checkpoints.
func (e *Engine) Snapshot() ([]byte, error) {
	var enc persist.Encoder
	enc.U8(engineSnapshotVersion)
	enc.U64(e.stats.BytesSealed)
	enc.U64(e.stats.BytesOpened)
	enc.U64(e.stats.GroupsSealed)
	enc.U64(e.stats.GroupsOpened)
	enc.U64(e.stats.AuthFailures)
	return enc.Finish(), nil
}

// Restore replaces the counters from a snapshot.
func (e *Engine) Restore(b []byte) error {
	d := persist.NewDecoder(b)
	if v := d.U8(); d.Err() == nil && v != engineSnapshotVersion {
		return fmt.Errorf("tee: unsupported engine snapshot version %d", v)
	}
	var st EngineStats
	st.BytesSealed = d.U64()
	st.BytesOpened = d.U64()
	st.GroupsSealed = d.U64()
	st.GroupsOpened = d.U64()
	st.AuthFailures = d.U64()
	if err := d.Err(); err != nil {
		return fmt.Errorf("tee: engine snapshot: %w", err)
	}
	e.stats = st
	return nil
}
