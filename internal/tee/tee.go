// Package tee models the trusted execution environment the FEDORA
// controller runs in (Sec 5 of the paper): a small (default 4 KB) on-chip
// scratchpad that is safe from external observation, plus a memory
// encryption engine for everything placed off-chip.
//
// The scratchpad holds only the encryption key, the root counter, and a
// small scratch buffer used to accelerate path eviction (Sec 6.6 / Fig
// 10). All other data structures live in untrusted DRAM or SSD and are
// protected by the counter-based group encryption of Sec 5.2: multiple
// tree nodes are grouped (512 bytes by default), each group is encrypted
// under a per-group counter and authenticated with a tag, and the counter
// for each group is stored in its *parent* group so that tampering with a
// counter is caught when the parent fails verification — no Merkle tree
// needed. The counter of the root group lives in the scratchpad.
package tee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultScratchpadSize is the paper's assumed on-chip SRAM budget.
const DefaultScratchpadSize = 4096

// DefaultGroupSize is how many bytes of tree nodes share one
// counter/tag, chosen empirically in the paper (Sec 5.2) to balance
// metadata overhead against encryption latency. Relative to a TEE that
// allocates a counter/tag per 64-byte cache line this is an 8× metadata
// reduction.
const DefaultGroupSize = 512

// TagSize is the length of the truncated HMAC-SHA256 authentication tag
// appended to each encrypted group. 16 bytes matches hardware memory
// encryption engines (e.g. Intel MEE).
const TagSize = 16

// CounterSize is the length of the per-group write counter stored in the
// parent group.
const CounterSize = 8

// ErrScratchpadFull is returned when reservations exceed the on-chip SRAM.
var ErrScratchpadFull = errors.New("tee: scratchpad capacity exceeded")

// ErrAuthFailed is returned when a group's tag does not verify — the
// untrusted memory was tampered with or replayed under a stale counter.
var ErrAuthFailed = errors.New("tee: authentication failed (tamper or replay)")

// Scratchpad models the on-chip SRAM. Components reserve byte budgets at
// construction time; the model verifies the total fits, reproducing the
// paper's accounting that key + root counter + eviction scratch space all
// fit in 4 KB.
type Scratchpad struct {
	size     int
	reserved int
	regions  map[string]int
}

// NewScratchpad creates a scratchpad of the given size in bytes. A size
// of 0 models a TEE with no scratchpad at all (the Fig 10 ablation).
func NewScratchpad(size int) *Scratchpad {
	if size < 0 {
		panic("tee: negative scratchpad size")
	}
	return &Scratchpad{size: size, regions: make(map[string]int)}
}

// Reserve claims n bytes for the named component. It fails if the budget
// would be exceeded or the name is already taken.
func (s *Scratchpad) Reserve(name string, n int) error {
	if n < 0 {
		return fmt.Errorf("tee: negative reservation %d for %q", n, name)
	}
	if _, dup := s.regions[name]; dup {
		return fmt.Errorf("tee: region %q already reserved", name)
	}
	if s.reserved+n > s.size {
		return fmt.Errorf("%w: %q needs %d, %d of %d free",
			ErrScratchpadFull, name, n, s.size-s.reserved, s.size)
	}
	s.regions[name] = n
	s.reserved += n
	return nil
}

// Release frees the named reservation.
func (s *Scratchpad) Release(name string) {
	if n, ok := s.regions[name]; ok {
		s.reserved -= n
		delete(s.regions, name)
	}
}

// Free returns the remaining byte budget.
func (s *Scratchpad) Free() int { return s.size - s.reserved }

// Size returns the total scratchpad size.
func (s *Scratchpad) Size() int { return s.size }

// Engine is the memory encryption engine: AES-128-CTR for
// confidentiality and truncated HMAC-SHA256 for integrity and freshness.
// Freshness comes from the (groupID, counter) pair forming the CTR nonce
// and being bound into the tag: replaying an old ciphertext fails
// verification because the caller supplies the *current* counter, which
// it obtained from the (already verified) parent group or from the
// scratchpad-resident root counter.
type Engine struct {
	block  cipher.Block
	macKey [32]byte
	stats  EngineStats
}

// EngineStats counts crypto work for the performance model.
type EngineStats struct {
	BytesSealed  uint64
	BytesOpened  uint64
	GroupsSealed uint64
	GroupsOpened uint64
	AuthFailures uint64
}

// NewEngine derives an engine from a 32-byte master key (16 bytes for
// AES-128, 32 derived for HMAC).
func NewEngine(masterKey [32]byte) *Engine {
	block, err := aes.NewCipher(masterKey[:16])
	if err != nil {
		panic("tee: aes.NewCipher: " + err.Error()) // impossible for 16-byte key
	}
	e := &Engine{block: block}
	mac := sha256.Sum256(append([]byte("fedora-mac-key"), masterKey[:]...))
	e.macKey = mac
	return e
}

// nonce builds the 16-byte CTR initial counter block from the group
// identity and its write counter.
func nonce(groupID, counter uint64) [aes.BlockSize]byte {
	var n [aes.BlockSize]byte
	binary.LittleEndian.PutUint64(n[0:8], groupID)
	binary.LittleEndian.PutUint64(n[8:16], counter)
	return n
}

// SealedSize returns the ciphertext length for a plaintext of n bytes.
func SealedSize(n int) int { return n + TagSize }

// Seal encrypts plaintext under (groupID, counter) and returns
// ciphertext||tag. The same (groupID, counter) pair must never be reused
// for different plaintexts; ORAM write logic guarantees monotone counters.
func (e *Engine) Seal(plaintext []byte, groupID, counter uint64) []byte {
	out := make([]byte, len(plaintext)+TagSize)
	iv := nonce(groupID, counter)
	ctr := cipher.NewCTR(e.block, iv[:])
	ctr.XORKeyStream(out[:len(plaintext)], plaintext)
	tag := e.tag(out[:len(plaintext)], groupID, counter)
	copy(out[len(plaintext):], tag[:TagSize])
	e.stats.BytesSealed += uint64(len(plaintext))
	e.stats.GroupsSealed++
	return out
}

// Open verifies and decrypts ciphertext||tag produced by Seal under the
// same (groupID, counter). It returns ErrAuthFailed on any mismatch.
func (e *Engine) Open(sealed []byte, groupID, counter uint64) ([]byte, error) {
	if len(sealed) < TagSize {
		e.stats.AuthFailures++
		return nil, ErrAuthFailed
	}
	body := sealed[:len(sealed)-TagSize]
	wantTag := sealed[len(sealed)-TagSize:]
	tag := e.tag(body, groupID, counter)
	if !hmac.Equal(tag[:TagSize], wantTag) {
		e.stats.AuthFailures++
		return nil, ErrAuthFailed
	}
	out := make([]byte, len(body))
	iv := nonce(groupID, counter)
	ctr := cipher.NewCTR(e.block, iv[:])
	ctr.XORKeyStream(out, body)
	e.stats.BytesOpened += uint64(len(body))
	e.stats.GroupsOpened++
	return out, nil
}

func (e *Engine) tag(ciphertext []byte, groupID, counter uint64) [sha256.Size]byte {
	mac := hmac.New(sha256.New, e.macKey[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], groupID)
	binary.LittleEndian.PutUint64(hdr[8:16], counter)
	mac.Write(hdr[:])
	mac.Write(ciphertext)
	var out [sha256.Size]byte
	mac.Sum(out[:0])
	return out
}

// Stats returns a copy of the accumulated crypto counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() { e.stats = EngineStats{} }

// GroupLayout describes how a tree structure's nodes are packed into
// encryption groups (Fig 6 of the paper): each stored group holds
// `GroupSize` bytes of node payload plus one CounterSize slot per child
// group (so a parent vouches for its children's freshness) plus the tag.
type GroupLayout struct {
	GroupSize     int // plaintext payload bytes per group
	ChildrenPer   int // child-group counters stored in each parent
	MetadataBytes int // counters + tag per group as stored
}

// NewGroupLayout computes the stored metadata overhead for a grouping
// configuration.
func NewGroupLayout(groupSize, childrenPer int) GroupLayout {
	return GroupLayout{
		GroupSize:     groupSize,
		ChildrenPer:   childrenPer,
		MetadataBytes: childrenPer*CounterSize + TagSize,
	}
}

// OverheadRatio is stored-bytes / payload-bytes − 1, i.e. the fractional
// memory overhead of the encryption metadata.
func (l GroupLayout) OverheadRatio() float64 {
	return float64(l.MetadataBytes) / float64(l.GroupSize)
}

// PerCacheLineOverheadRatio is the baseline the paper compares against: a
// TEE that allocates one counter + tag per 64-byte cache line.
func PerCacheLineOverheadRatio() float64 {
	return float64(CounterSize+TagSize) / 64.0
}
