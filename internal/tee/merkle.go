package tee

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// This file implements the classic Merkle-tree integrity scheme that
// counter-based TEEs use to protect their counters (Sec 5.1: "tampering
// with counters was detected through an expensive Merkle tree"). FEDORA
// replaces it with the parent-group counter chain of Sec 5.2; having
// both lets benchmarks quantify what that design choice saves: a Merkle
// verify/update walks ⌈log₂ n⌉ hash levels and touches sibling hashes,
// while the counter chain piggybacks freshness onto decryption work the
// path access performs anyway.

// MerkleTree authenticates n fixed-size leaves with SHA-256. The root
// digest is the only state that must live in trusted storage (the
// scratchpad); everything else may sit in untrusted memory because any
// tamper changes the recomputed root.
type MerkleTree struct {
	leafSize int
	numLeaf  int
	// levels[0] = leaf digests ... levels[last] = [root].
	levels [][][32]byte
	// stats
	hashOps uint64
}

// NewMerkleTree builds a tree over n all-zero leaves of leafSize bytes.
func NewMerkleTree(n, leafSize int) (*MerkleTree, error) {
	if n <= 0 || leafSize <= 0 {
		return nil, fmt.Errorf("tee: merkle needs positive dimensions, got %d×%d", n, leafSize)
	}
	// Pad to a power of two.
	pow2 := 1
	for pow2 < n {
		pow2 <<= 1
	}
	t := &MerkleTree{leafSize: leafSize, numLeaf: n}
	zero := make([]byte, leafSize)
	level := make([][32]byte, pow2)
	for i := range level {
		// Leaf digests bind the index (prevents block-swap attacks), so
		// each zero leaf has a distinct initial digest.
		level[i] = t.hashLeaf(i, zero)
	}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([][32]byte, len(level)/2)
		for i := range next {
			next[i] = t.hashPair(level[2*i], level[2*i+1])
		}
		t.levels = append(t.levels, next)
		level = next
	}
	t.hashOps = 0 // construction is free in the model
	return t, nil
}

// Root returns the trusted root digest.
func (t *MerkleTree) Root() [32]byte {
	return t.levels[len(t.levels)-1][0]
}

// HashOps reports hash evaluations performed since construction — the
// work metric benchmarks compare against the counter scheme.
func (t *MerkleTree) HashOps() uint64 { return t.hashOps }

// Depth is the number of hash levels above the leaves.
func (t *MerkleTree) Depth() int { return len(t.levels) - 1 }

func (t *MerkleTree) hashPair(a, b [32]byte) [32]byte {
	t.hashOps++
	var buf [64]byte
	copy(buf[:32], a[:])
	copy(buf[32:], b[:])
	return sha256.Sum256(buf[:])
}

func (t *MerkleTree) hashLeaf(i int, data []byte) [32]byte {
	t.hashOps++
	h := sha256.New()
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(i))
	h.Write(idx[:])
	h.Write(data)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Update installs new leaf contents and recomputes the path to the root
// (⌈log₂ n⌉ + 1 hashes).
func (t *MerkleTree) Update(i int, data []byte) error {
	if err := t.check(i, data); err != nil {
		return err
	}
	t.levels[0][i] = t.hashLeaf(i, data)
	pos := i
	for l := 0; l < len(t.levels)-1; l++ {
		pos /= 2
		t.levels[l+1][pos] = t.hashPair(t.levels[l][2*pos], t.levels[l][2*pos+1])
	}
	return nil
}

// Verify checks leaf i against the tree; ErrAuthFailed means the data
// (or a stored digest on its path) was tampered with.
func (t *MerkleTree) Verify(i int, data []byte) error {
	if err := t.check(i, data); err != nil {
		return err
	}
	digest := t.hashLeaf(i, data)
	if digest != t.levels[0][i] {
		return ErrAuthFailed
	}
	// Recompute the path against stored siblings up to the trusted root.
	pos := i
	for l := 0; l < len(t.levels)-1; l++ {
		sib := pos ^ 1
		var parent [32]byte
		if pos%2 == 0 {
			parent = t.hashPair(digest, t.levels[l][sib])
		} else {
			parent = t.hashPair(t.levels[l][sib], digest)
		}
		pos /= 2
		if parent != t.levels[l+1][pos] {
			return ErrAuthFailed
		}
		digest = parent
	}
	if digest != t.Root() {
		return ErrAuthFailed
	}
	return nil
}

// CorruptStoredDigest flips a bit in an internal node — test hook
// modelling an adversary tampering with the untrusted digest storage.
func (t *MerkleTree) CorruptStoredDigest(level, idx int) {
	t.levels[level][idx][0] ^= 0x01
}

func (t *MerkleTree) check(i int, data []byte) error {
	if i < 0 || i >= t.numLeaf {
		return fmt.Errorf("tee: merkle leaf %d out of range %d", i, t.numLeaf)
	}
	if len(data) != t.leafSize {
		return fmt.Errorf("tee: merkle leaf size %d != %d", len(data), t.leafSize)
	}
	return nil
}

// MerkleVsCounterCost contrasts the two freshness schemes for one ORAM
// path access over a tree with pathGroups encrypted groups (Sec 5.2):
// the counter chain verifies freshness as a side effect of the
// authenticated decryption the access performs anyway (0 extra hash
// walks), while a Merkle tree adds a log-depth hash walk per group
// touched.
func MerkleVsCounterCost(pathGroups, merkleLeaves int) (counterExtraHashes, merkleExtraHashes int) {
	depth := 0
	for p := 1; p < merkleLeaves; p <<= 1 {
		depth++
	}
	return 0, pathGroups * (depth + 1)
}
