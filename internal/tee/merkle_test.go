package tee

import (
	"errors"
	"math/rand"
	"testing"
)

func TestMerkleUpdateVerifyRoundTrip(t *testing.T) {
	mt, err := NewMerkleTree(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 16)
	data[0] = 0xAB
	if err := mt.Update(7, data); err != nil {
		t.Fatal(err)
	}
	if err := mt.Verify(7, data); err != nil {
		t.Errorf("verify failed: %v", err)
	}
	// Wrong data fails.
	bad := make([]byte, 16)
	bad[0] = 0xAC
	if err := mt.Verify(7, bad); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("tampered leaf err = %v", err)
	}
}

func TestMerkleZeroLeavesVerify(t *testing.T) {
	mt, _ := NewMerkleTree(16, 8)
	if err := mt.Verify(3, make([]byte, 8)); err != nil {
		t.Errorf("pristine zero leaf failed: %v", err)
	}
}

func TestMerkleRootChangesOnUpdate(t *testing.T) {
	mt, _ := NewMerkleTree(64, 8)
	before := mt.Root()
	data := make([]byte, 8)
	data[3] = 9
	_ = mt.Update(10, data)
	if mt.Root() == before {
		t.Error("root unchanged after update")
	}
}

func TestMerkleDetectsStoredDigestTamper(t *testing.T) {
	mt, _ := NewMerkleTree(64, 8)
	data := make([]byte, 8)
	data[0] = 1
	_ = mt.Update(20, data)
	// Corrupt an internal digest on leaf 20's path.
	mt.CorruptStoredDigest(1, 10)
	if err := mt.Verify(20, data); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("internal tamper err = %v", err)
	}
}

func TestMerkleRandomizedConsistency(t *testing.T) {
	mt, _ := NewMerkleTree(128, 4)
	rng := rand.New(rand.NewSource(1))
	ref := map[int][]byte{}
	for i := 0; i < 500; i++ {
		leaf := rng.Intn(128)
		if rng.Intn(2) == 0 {
			data := make([]byte, 4)
			rng.Read(data)
			if err := mt.Update(leaf, data); err != nil {
				t.Fatal(err)
			}
			ref[leaf] = data
		} else {
			want, ok := ref[leaf]
			if !ok {
				want = make([]byte, 4)
			}
			if err := mt.Verify(leaf, want); err != nil {
				t.Fatalf("iter %d leaf %d: %v", i, leaf, err)
			}
		}
	}
}

func TestMerkleValidation(t *testing.T) {
	if _, err := NewMerkleTree(0, 8); err == nil {
		t.Error("zero leaves accepted")
	}
	if _, err := NewMerkleTree(8, 0); err == nil {
		t.Error("zero leaf size accepted")
	}
	mt, _ := NewMerkleTree(8, 4)
	if err := mt.Update(8, make([]byte, 4)); err == nil {
		t.Error("out-of-range leaf accepted")
	}
	if err := mt.Update(0, make([]byte, 3)); err == nil {
		t.Error("wrong-size leaf accepted")
	}
}

func TestMerkleDepthAndCost(t *testing.T) {
	mt, _ := NewMerkleTree(1024, 8)
	if mt.Depth() != 10 {
		t.Errorf("depth = %d, want 10", mt.Depth())
	}
	mt2, _ := NewMerkleTree(1000, 8) // pads to 1024
	if mt2.Depth() != 10 {
		t.Errorf("padded depth = %d", mt2.Depth())
	}
	// The Sec 5.2 comparison: counter chain adds zero extra hash walks.
	ctr, mrk := MerkleVsCounterCost(20, 1<<20)
	if ctr != 0 {
		t.Errorf("counter extra hashes = %d", ctr)
	}
	if mrk < 20*20 {
		t.Errorf("merkle extra hashes = %d, want ≥ pathGroups × depth", mrk)
	}
}

func TestMerkleHashOpsCounted(t *testing.T) {
	mt, _ := NewMerkleTree(64, 8)
	before := mt.HashOps()
	_ = mt.Update(5, make([]byte, 8))
	// One leaf hash + depth pair-hashes.
	if got := mt.HashOps() - before; got != uint64(1+mt.Depth()) {
		t.Errorf("update cost %d hashes, want %d", got, 1+mt.Depth())
	}
}

func BenchmarkMerkleUpdate(b *testing.B) {
	mt, _ := NewMerkleTree(1<<20, 64)
	data := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mt.Update(i&(1<<20-1), data)
	}
}

// BenchmarkCounterSealVsMerkle contrasts the per-group cost of the two
// freshness schemes: sealing a 512-byte group (counter chain, the work
// the access pays anyway) vs a Merkle verify walk for the same group.
func BenchmarkCounterSealVsMerkle(b *testing.B) {
	var key [32]byte
	e := NewEngine(key)
	group := make([]byte, DefaultGroupSize)
	mt, _ := NewMerkleTree(1<<20, DefaultGroupSize)
	_ = mt.Update(0, group)
	b.Run("counter-seal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Seal(group, 1, uint64(i))
		}
	})
	b.Run("merkle-verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := mt.Verify(0, group); err != nil {
				b.Fatal(err)
			}
		}
	})
}
