//go:build unix

package persist

import (
	"os"
	"syscall"
)

// LockFile takes an exclusive advisory flock on path (created if
// missing), blocking until the lock is held, and returns a release
// function. The lock serializes critical sections across PROCESSES
// sharing a directory — e.g. two coordinator instances claiming the
// next fencing epoch — and is released by the kernel if the holder
// dies, so a crashed holder can never wedge its successor.
func LockFile(path string) (release func(), err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		// Closing the descriptor drops the flock; the explicit unlock just
		// releases waiters before the close syscall.
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, nil
}
