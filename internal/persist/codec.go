package persist

import (
	"fmt"
	"math"
)

// Encoder builds a component snapshot payload: little-endian primitives
// plus length-prefixed byte strings. The zero value is ready to use.
type Encoder struct {
	b []byte
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.b = append(e.b, v) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends an int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F32 appends a float32 as its IEEE-754 bits.
func (e *Encoder) F32(v float32) { e.U32(math.Float32bits(v)) }

// F64 appends a float64 as its IEEE-754 bits.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a u64 length prefix followed by the bytes.
func (e *Encoder) Bytes(p []byte) {
	e.U64(uint64(len(p)))
	e.b = append(e.b, p...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) { e.Bytes([]byte(s)) }

// F32s appends a length-prefixed float32 slice.
func (e *Encoder) F32s(v []float32) {
	e.U64(uint64(len(v)))
	for _, f := range v {
		e.F32(f)
	}
}

// U64s appends a length-prefixed uint64 slice.
func (e *Encoder) U64s(v []uint64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// Finish returns the accumulated payload.
func (e *Encoder) Finish() []byte { return e.b }

// Decoder consumes a payload produced by Encoder. Every read method is
// total: on malformed or truncated input it records an error and returns
// the zero value, so decoding code can run straight-line and check Err()
// once at the end. Decoders never panic and never allocate more than the
// input length.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps a payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the unread byte count.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail(what)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	p := d.take(1, "u8")
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool reads a one-byte bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	p := d.take(4, "u32")
	if p == nil {
		return 0
	}
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	p := d.take(8, "u64")
	if p == nil {
		return 0
	}
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F32 reads a float32.
func (d *Decoder) F32() float32 { return math.Float32frombits(d.U32()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// length reads a u64 length prefix and validates it against the bytes
// actually remaining, so a corrupted prefix can never trigger a huge
// allocation.
func (d *Decoder) length(elemSize int, what string) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > uint64(d.Remaining()/elemSize) {
		d.fail(what + " length")
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte string (copied out of the input).
func (d *Decoder) Bytes() []byte {
	n := d.length(1, "bytes")
	p := d.take(n, "bytes")
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// F32s reads a length-prefixed float32 slice.
func (d *Decoder) F32s() []float32 {
	n := d.length(4, "f32s")
	if d.err != nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = d.F32()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// U64s reads a length-prefixed uint64 slice.
func (d *Decoder) U64s() []uint64 {
	n := d.length(8, "u64s")
	if d.err != nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	if d.err != nil {
		return nil
	}
	return out
}
