package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz targets assert the durability layer's hard safety property: any
// byte stream — truncated, bit-flipped, adversarial — decodes to either
// a valid result or a clean error. Never a panic, never an unbounded
// allocation.

func FuzzDecodeCheckpoint(f *testing.F) {
	// Seed with a valid checkpoint and interesting mutations of it.
	cp := NewCheckpoint()
	cp.Epoch = 3
	cp.Put("fl/trainer", []byte("trainer"))
	cp.Put("fedora/controller", bytes.Repeat([]byte{5}, 200))
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[len(Magic)+2] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(bytes.NewReader(data))
		if err == nil && cp == nil {
			t.Fatal("nil checkpoint without error")
		}
	})
}

func FuzzReadWAL(f *testing.F) {
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.wal")
	w, err := OpenWAL(path)
	if err != nil {
		f.Fatal(err)
	}
	for r := uint64(1); r <= 3; r++ {
		if err := w.Append(RoundRecord{Round: r, Seed: int64(r), ClientDigest: r * 7}); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(WALMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "f.wal")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		records, _, err := ReadWALFile(p)
		if err != nil {
			return // clean error is fine
		}
		// Whatever decodes must be structurally sane.
		for _, rec := range records {
			_ = rec
		}
	})
}

func FuzzDecoder(f *testing.F) {
	var e Encoder
	e.U64(3)
	e.Bytes([]byte("abc"))
	e.F32s([]float32{1, 2, 3})
	f.Add(e.Finish())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		d.U8()
		d.U32()
		d.U64()
		d.Bytes()
		_ = d.String()
		d.F32s()
		d.U64s()
		d.F64()
		_ = d.Err()
	})
}
