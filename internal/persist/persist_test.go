package persist

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

// --- codec ---

func TestCodecRoundTrip(t *testing.T) {
	f := func(u8 uint8, b bool, u32 uint32, u64 uint64, i64 int64, f32 float32, f64 float64, bs []byte, s string, fs []float32, us []uint64) bool {
		var e Encoder
		e.U8(u8)
		e.Bool(b)
		e.U32(u32)
		e.U64(u64)
		e.I64(i64)
		e.F32(f32)
		e.F64(f64)
		e.Bytes(bs)
		e.String(s)
		e.F32s(fs)
		e.U64s(us)
		d := NewDecoder(e.Finish())
		ok := d.U8() == u8 && d.Bool() == b && d.U32() == u32 && d.U64() == u64 &&
			d.I64() == i64
		gf32, gf64 := d.F32(), d.F64()
		gbs, gs, gfs, gus := d.Bytes(), d.String(), d.F32s(), d.U64s()
		if d.Err() != nil || d.Remaining() != 0 {
			return false
		}
		// NaN-safe float comparison: compare the bit patterns we encoded.
		if !ok || !sameBitsF32(gf32, f32) || !sameBitsF64(gf64, f64) || gs != s {
			return false
		}
		if !bytes.Equal(gbs, bs) && !(len(gbs) == 0 && len(bs) == 0) {
			return false
		}
		if !f32sEqual(gfs, fs) || !u64sEqual(gus, us) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sameBitsF32(a, b float32) bool {
	var e1, e2 Encoder
	e1.F32(a)
	e2.F32(b)
	return bytes.Equal(e1.Finish(), e2.Finish())
}

func sameBitsF64(a, b float64) bool {
	var e1, e2 Encoder
	e1.F64(a)
	e2.F64(b)
	return bytes.Equal(e1.Finish(), e2.Finish())
}

func f32sEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameBitsF32(a[i], b[i]) {
			return false
		}
	}
	return true
}

func u64sEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDecoderTruncation(t *testing.T) {
	var e Encoder
	e.U64(42)
	e.Bytes([]byte("hello"))
	full := e.Finish()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.U64()
		d.Bytes()
		if d.Err() == nil {
			t.Fatalf("truncation at %d/%d went undetected", cut, len(full))
		}
		if !errors.Is(d.Err(), ErrCorrupt) {
			t.Fatalf("truncation error not ErrCorrupt: %v", d.Err())
		}
	}
}

func TestDecoderBoundedAllocation(t *testing.T) {
	// A length prefix claiming 2^60 elements must fail cleanly, not
	// attempt the allocation.
	var e Encoder
	e.U64(1 << 60)
	d := NewDecoder(e.Finish())
	if got := d.Bytes(); got != nil || d.Err() == nil {
		t.Fatalf("oversized length accepted: %v bytes, err=%v", len(got), d.Err())
	}
}

// --- frames ---

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, Magic)
	if err != nil {
		t.Fatal(err)
	}
	frames := map[string][]byte{"alpha": []byte("payload-a"), "beta": {}, "gamma": bytes.Repeat([]byte{7}, 3000)}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if err := fw.WriteFrame(name, frames[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	fr, err := NewFrameReader(bytes.NewReader(buf.Bytes()), Magic)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]byte{}
	for {
		name, payload, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got[name] = payload
	}
	if len(got) != len(frames) {
		t.Fatalf("got %d frames, want %d", len(got), len(frames))
	}
	for name, want := range frames {
		if !bytes.Equal(got[name], want) {
			t.Errorf("frame %q: got %d bytes, want %d", name, len(got[name]), len(want))
		}
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	fw, _ := NewFrameWriter(&buf, Magic)
	if err := fw.WriteFrame("data", bytes.Repeat([]byte{3}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Flip each byte in turn: every corruption must surface as an error
	// (never a silent wrong read, never a panic).
	for i := range clean {
		mut := append([]byte(nil), clean...)
		mut[i] ^= 0xFF
		fr, err := NewFrameReader(bytes.NewReader(mut), Magic)
		if err != nil {
			continue // magic corrupted: fine
		}
		for {
			_, _, err = fr.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF && i >= len(Magic) {
			// A flip that still yields clean EOF would be a missed
			// corruption — except no such flip exists with CRC + trailer.
			t.Fatalf("byte flip at %d yielded a clean stream", i)
		}
	}
}

func TestFrameTruncationWithoutTrailer(t *testing.T) {
	var buf bytes.Buffer
	fw, _ := NewFrameWriter(&buf, Magic)
	fw.WriteFrame("data", []byte("abc"))
	// No Close(): stream has a valid frame but no trailer.
	fr, err := NewFrameReader(bytes.NewReader(buf.Bytes()), Magic)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fr.Next(); err != nil {
		t.Fatalf("first frame should read: %v", err)
	}
	if _, _, err := fr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing trailer not detected: %v", err)
	}
}

// --- checkpoint container ---

func TestCheckpointRoundTrip(t *testing.T) {
	cp := NewCheckpoint()
	cp.Epoch = 7
	cp.Put("fl/trainer", []byte("trainer-state"))
	cp.Put("fedora/controller", bytes.Repeat([]byte{9}, 512))
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 7 {
		t.Fatalf("epoch %d, want 7", got.Epoch)
	}
	if !reflect.DeepEqual(got.Sections(), cp.Sections()) {
		t.Fatalf("sections %v, want %v", got.Sections(), cp.Sections())
	}
	for _, name := range cp.Sections() {
		want, _ := cp.Get(name)
		gotP, ok := got.Get(name)
		if !ok || !bytes.Equal(gotP, want) {
			t.Fatalf("section %q mismatch", name)
		}
	}
}

// --- manager ---

func TestManagerFallbackAcrossCorruptEpochs(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := uint64(1); epoch <= 3; epoch++ {
		cp := NewCheckpoint()
		cp.Put("s", []byte{byte(epoch)})
		if err := m.Save(epoch, cp); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy: latest wins.
	cp, skipped, err := m.LoadLatest()
	if err != nil || len(skipped) != 0 || cp.Epoch != 3 {
		t.Fatalf("healthy load: epoch=%v skipped=%v err=%v", cp, skipped, err)
	}

	// Corrupt the newest file: fallback to epoch 2, reporting the skip.
	path3 := m.CheckpointPath(3)
	raw, _ := os.ReadFile(path3)
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path3, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, skipped, err = m.LoadLatest()
	if err != nil {
		t.Fatalf("fallback load failed: %v", err)
	}
	if cp.Epoch != 2 {
		t.Fatalf("fell back to epoch %d, want 2", cp.Epoch)
	}
	if len(skipped) != 1 || !errors.Is(skipped[0], ErrCorrupt) {
		t.Fatalf("skip not reported as corruption: %v", skipped)
	}

	// Truncate epoch 2 as well: epoch 1 remains.
	if err := os.Truncate(m.CheckpointPath(2), 10); err != nil {
		t.Fatal(err)
	}
	cp, skipped, err = m.LoadLatest()
	if err != nil || cp.Epoch != 1 || len(skipped) != 2 {
		t.Fatalf("double fallback: cp=%v skipped=%v err=%v", cp, skipped, err)
	}
}

func TestManagerNoCheckpoint(t *testing.T) {
	m, err := OpenManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

func TestManagerPrune(t *testing.T) {
	m, err := OpenManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for epoch := uint64(1); epoch <= 5; epoch++ {
		cp := NewCheckpoint()
		cp.Put("s", nil)
		if err := m.Save(epoch, cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Prune(2); err != nil {
		t.Fatal(err)
	}
	epochs, err := m.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if !u64sEqual(epochs, []uint64{4, 5}) {
		t.Fatalf("after prune: %v", epochs)
	}
}

// --- atomic write ---

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFileAtomic(path, func(f *os.File) error {
		_, err := f.WriteString("old")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, func(f *os.File) error {
		_, err := f.WriteString("new-content")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new-content" {
		t.Fatalf("content %q", got)
	}
}

func TestWriteFileAtomicFailureKeepsOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFileAtomic(path, func(f *os.File) error {
		_, err := f.WriteString("precious")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := WriteFileAtomic(path, func(f *os.File) error {
		f.WriteString("partial garbage")
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("old content destroyed: %q", got)
	}
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

// --- WAL ---

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rounds.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []RoundRecord{
		{Round: 1, Epoch: 0, Seed: 12345, ClientDigest: 0xDEAD},
		{Round: 2, Epoch: 0, Seed: -99, ClientDigest: 0xBEEF},
		{Round: 3, Epoch: 1, Seed: 7, ClientDigest: 42},
	}
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: appends continue after existing records.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, RoundRecord{Round: 4, Epoch: 1, Seed: 8, ClientDigest: 43})
	if err := w2.Append(want[3]); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	got, torn, err := ReadWALFile(path)
	if err != nil || torn {
		t.Fatalf("read: torn=%v err=%v", torn, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records %+v, want %+v", got, want)
	}
}

func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rounds.wal")
	w, _ := OpenWAL(path)
	for r := uint64(1); r <= 3; r++ {
		if err := w.Append(RoundRecord{Round: r, Seed: int64(r)}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	clean, _ := os.ReadFile(path)

	// Every truncation point must keep all records whose frames survived
	// intact and flag the tail as torn (or read clean at exact record
	// boundaries).
	for cut := len(WALMagic); cut < len(clean); cut++ {
		if err := os.WriteFile(path, clean[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, _, err := ReadWALFile(path)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		for i, rec := range recs {
			if rec.Round != uint64(i+1) {
				t.Fatalf("cut=%d: record %d has round %d", cut, i, rec.Round)
			}
		}
	}
	// And a missing file is an empty log.
	os.Remove(path)
	recs, torn, err := ReadWALFile(path)
	if err != nil || torn || len(recs) != 0 {
		t.Fatalf("missing file: recs=%v torn=%v err=%v", recs, torn, err)
	}
}

// --- RNG source ---

func TestSourceMatchesStdlib(t *testing.T) {
	// The wrapper must produce EXACTLY the stdlib sequence — components
	// switched to it keep their seeded behaviour.
	a := rand.New(rand.NewSource(99))
	b := rand.New(NewSource(99))
	for i := 0; i < 1000; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("diverged at draw %d", i)
		}
	}
	// Mixed-width draws too.
	a = rand.New(rand.NewSource(7).(rand.Source64))
	b = rand.New(NewSource(7))
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() || a.Int63n(1000) != b.Int63n(1000) {
			t.Fatalf("mixed draws diverged at %d", i)
		}
	}
}

func TestSourceSnapshotRestore(t *testing.T) {
	f := func(seed int64, preDraws uint16) bool {
		src := NewSource(seed)
		r := rand.New(src)
		for i := 0; i < int(preDraws); i++ {
			r.Int63()
		}
		snap := src.Snapshot()
		want := make([]int64, 50)
		for i := range want {
			want[i] = r.Int63()
		}
		// Restore into a source with a different history.
		other := NewSource(seed + 1)
		rand.New(other).Int63()
		if err := other.Restore(snap); err != nil {
			return false
		}
		r2 := rand.New(other)
		for i := range want {
			if r2.Int63() != want[i] {
				return false
			}
		}
		return other.Draws() == uint64(preDraws)+50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSourceRestoreRejectsGarbage(t *testing.T) {
	s := NewSource(1)
	if err := s.Restore([]byte{0xFF, 1, 2}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage accepted: %v", err)
	}
	if err := s.Restore(nil); err == nil {
		t.Fatal("empty snapshot accepted")
	}
}
