//go:build !unix

package persist

import "os"

// LockFile without flock(2): the file is created for parity but no
// cross-process lock is taken. Deployments that need the lock — two
// coordinator processes sharing one checkpoint directory — are
// unix-only; single-process use never contends.
func LockFile(path string) (release func(), err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return func() { _ = f.Close() }, nil
}
