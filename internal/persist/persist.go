// Package persist is FEDORA's durability subsystem: it turns the
// long-lived server-side state of the system — the SSD-resident RAW ORAM
// tree image, the position map, the stash, the VTree valid bits, the TEE
// counters, and the FL training state — into checkpoint files that
// survive a process crash, plus a write-ahead round log (WAL) that lets
// recovery replay the rounds executed since the last checkpoint.
//
// The paper treats the main ORAM as persistent infrastructure (Secs 4.4,
// 5.2): a production FL deployment cannot afford to lose thousands of
// training rounds to a restart. This package provides the mechanisms;
// each stateful component contributes a versioned Snapshot()/Restore()
// pair, and internal/fl ties them together into a durable training loop.
//
// # Checkpoint format
//
// A checkpoint file is a sequence of CRC-protected frames:
//
//	header : magic "FEDORAC1" (8 bytes)
//	frame  : u32 len(name) | name | u64 len(payload) | payload
//	         | u32 CRC32-IEEE(name ‖ payload)
//	trailer: a frame named "!end" whose payload is the u64 frame count
//
// Every frame is independently checksummed, so corruption is localized
// and detected before any payload is interpreted; a missing trailer
// frame means the file was truncated (e.g. a crash mid-write, although
// the atomic temp-file + fsync + rename writer makes that window
// invisible to readers of the final path). Decoders return clean errors
// on any malformed input — never panics (fuzz-tested).
//
// # Write-ahead round log
//
// The WAL is an append-only file of the same frame format. The FL layer
// appends one RoundRecord per completed round (round number, the round's
// RNG seed, a digest of the selected clients, and the checkpoint epoch it
// builds on). Because round execution is seed-deterministic (PR 1) and
// RNG state is part of every checkpoint, recovery is:
//
//  1. load the newest checkpoint that validates (falling back across
//     epochs on corruption),
//  2. re-execute the WAL rounds recorded after it, verifying each
//     replayed round reproduces the logged seed and client digest.
//
// The result is bit-identical to an uninterrupted run.
package persist

import "errors"

// ErrCorrupt is the sentinel wrapped by every integrity failure: bad
// magic, mismatched CRC, truncated frame, malformed payload.
var ErrCorrupt = errors.New("persist: corrupt data")

// ErrNoCheckpoint is returned by Manager.LoadLatest when the directory
// holds no (valid or invalid) checkpoint at all.
var ErrNoCheckpoint = errors.New("persist: no checkpoint found")
