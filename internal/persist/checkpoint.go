package persist

import (
	"fmt"
	"io"
)

// metaFrameName holds the checkpoint-level metadata frame.
const metaFrameName = "!meta"

// checkpointVersion is the version stamped into the meta frame.
const checkpointVersion = 1

// Checkpoint is an ordered set of named component snapshots — one
// section per Snapshot()-capable component — plus the epoch number the
// Manager assigns. Sections keep insertion order so encoding is
// deterministic.
type Checkpoint struct {
	Epoch    uint64
	sections map[string][]byte
	order    []string
}

// NewCheckpoint returns an empty checkpoint.
func NewCheckpoint() *Checkpoint {
	return &Checkpoint{sections: make(map[string][]byte)}
}

// Put adds or replaces a section.
func (c *Checkpoint) Put(name string, payload []byte) {
	if _, dup := c.sections[name]; !dup {
		c.order = append(c.order, name)
	}
	c.sections[name] = payload
}

// Get returns a section's payload.
func (c *Checkpoint) Get(name string) ([]byte, bool) {
	p, ok := c.sections[name]
	return p, ok
}

// Sections lists section names in insertion order.
func (c *Checkpoint) Sections() []string {
	return append([]string(nil), c.order...)
}

// Encode writes the checkpoint as a framed stream.
func (c *Checkpoint) Encode(w io.Writer) error {
	fw, err := NewFrameWriter(w, Magic)
	if err != nil {
		return err
	}
	var meta Encoder
	meta.U32(checkpointVersion)
	meta.U64(c.Epoch)
	if err := fw.WriteFrame(metaFrameName, meta.Finish()); err != nil {
		return err
	}
	for _, name := range c.order {
		if err := fw.WriteFrame(name, c.sections[name]); err != nil {
			return err
		}
	}
	return fw.Close()
}

// DecodeCheckpoint parses a framed checkpoint stream, validating the
// magic, every frame CRC, and the trailer.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	fr, err := NewFrameReader(r, Magic)
	if err != nil {
		return nil, err
	}
	c := NewCheckpoint()
	sawMeta := false
	for {
		name, payload, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if name == metaFrameName {
			d := NewDecoder(payload)
			version := d.U32()
			c.Epoch = d.U64()
			if d.Err() != nil {
				return nil, fmt.Errorf("%w: malformed meta frame", ErrCorrupt)
			}
			if version != checkpointVersion {
				return nil, fmt.Errorf("%w: unsupported checkpoint version %d", ErrCorrupt, version)
			}
			sawMeta = true
			continue
		}
		c.Put(name, payload)
	}
	if !sawMeta {
		return nil, fmt.Errorf("%w: checkpoint missing meta frame", ErrCorrupt)
	}
	return c, nil
}
