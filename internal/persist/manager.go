package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// checkpointPattern names checkpoint files; the epoch is zero-padded so
// lexicographic directory order equals numeric order.
const checkpointPattern = "checkpoint-%08d.fckpt"

// walFileName is the round WAL inside a checkpoint directory.
const walFileName = "rounds.wal"

// Manager owns a checkpoint directory: epoch-numbered checkpoint files
// written atomically, plus the round WAL. It is the single place that
// decides which checkpoint recovery starts from.
type Manager struct {
	dir string
}

// OpenManager creates (if needed) and wraps a checkpoint directory.
func OpenManager(dir string) (*Manager, error) {
	if dir == "" {
		return nil, errors.New("persist: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Manager{dir: dir}, nil
}

// Dir returns the managed directory.
func (m *Manager) Dir() string { return m.dir }

// CheckpointPath returns the file path for an epoch.
func (m *Manager) CheckpointPath(epoch uint64) string {
	return filepath.Join(m.dir, fmt.Sprintf(checkpointPattern, epoch))
}

// WALPath returns the round WAL path.
func (m *Manager) WALPath() string { return filepath.Join(m.dir, walFileName) }

// Save atomically writes cp as the given epoch.
func (m *Manager) Save(epoch uint64, cp *Checkpoint) error {
	cp.Epoch = epoch
	return WriteFileAtomic(m.CheckpointPath(epoch), func(w *os.File) error {
		return cp.Encode(w)
	})
}

// Epochs lists the on-disk checkpoint epochs in ascending order.
func (m *Manager) Epochs() ([]uint64, error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	var epochs []uint64
	for _, e := range entries {
		var epoch uint64
		if n, err := fmt.Sscanf(e.Name(), checkpointPattern, &epoch); n == 1 && err == nil {
			epochs = append(epochs, epoch)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// Load reads and validates one epoch's checkpoint.
func (m *Manager) Load(epoch uint64) (*Checkpoint, error) {
	f, err := os.Open(m.CheckpointPath(epoch))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cp, err := DecodeCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint epoch %d (%s): %w", epoch, f.Name(), err)
	}
	if cp.Epoch != epoch {
		return nil, fmt.Errorf("%w: checkpoint epoch %d file claims epoch %d", ErrCorrupt, epoch, cp.Epoch)
	}
	return cp, nil
}

// LoadLatest returns the newest checkpoint that validates. Corrupt or
// truncated newer epochs are skipped — each skip is reported in
// `skipped` so callers can surface WHY recovery fell back — and the
// next older epoch is tried. ErrNoCheckpoint is returned when the
// directory has no checkpoint files at all; if files exist but none
// validates, the last corruption error is returned.
func (m *Manager) LoadLatest() (cp *Checkpoint, skipped []error, err error) {
	epochs, err := m.Epochs()
	if err != nil {
		return nil, nil, err
	}
	if len(epochs) == 0 {
		return nil, nil, ErrNoCheckpoint
	}
	var lastErr error
	for i := len(epochs) - 1; i >= 0; i-- {
		cp, loadErr := m.Load(epochs[i])
		if loadErr == nil {
			return cp, skipped, nil
		}
		lastErr = loadErr
		skipped = append(skipped, loadErr)
	}
	return nil, skipped, fmt.Errorf("persist: every checkpoint in %s failed to load: %w", m.dir, lastErr)
}

// Prune removes all but the newest `keep` checkpoints (keep <= 0 keeps
// everything). The WAL is never pruned here: records older than the
// oldest kept checkpoint are simply ignored by recovery.
func (m *Manager) Prune(keep int) error {
	if keep <= 0 {
		return nil
	}
	epochs, err := m.Epochs()
	if err != nil {
		return err
	}
	for len(epochs) > keep {
		if err := os.Remove(m.CheckpointPath(epochs[0])); err != nil && !os.IsNotExist(err) {
			return err
		}
		epochs = epochs[1:]
	}
	return nil
}
