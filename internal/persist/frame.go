package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies a framed checkpoint stream (8 bytes; the trailing
// digit is the format version).
const Magic = "FEDORAC1"

// WALMagic identifies a write-ahead log stream.
const WALMagic = "FEDORAW1"

// endFrameName marks the trailer frame; its payload is the u64 count of
// preceding frames, which lets the reader distinguish a cleanly closed
// stream from one truncated at a frame boundary.
const endFrameName = "!end"

// maxNameLen bounds frame names; anything longer is corruption.
const maxNameLen = 256

// frameReadChunk bounds single allocations while reading payloads, so a
// corrupted length prefix cannot demand gigabytes up front.
const frameReadChunk = 1 << 20

// FrameWriter emits CRC-protected frames to an underlying writer.
type FrameWriter struct {
	w      io.Writer
	frames uint64
	closed bool
}

// NewFrameWriter writes the stream magic and returns a writer.
func NewFrameWriter(w io.Writer, magic string) (*FrameWriter, error) {
	if _, err := io.WriteString(w, magic); err != nil {
		return nil, err
	}
	return &FrameWriter{w: w}, nil
}

// WriteFrame appends one named frame.
func (fw *FrameWriter) WriteFrame(name string, payload []byte) error {
	if fw.closed {
		return fmt.Errorf("persist: write to closed frame stream")
	}
	if len(name) == 0 || len(name) > maxNameLen {
		return fmt.Errorf("persist: frame name length %d out of range", len(name))
	}
	return writeRawFrame(fw.w, name, payload, &fw.frames)
}

// Close writes the trailer frame. The underlying writer is not closed.
func (fw *FrameWriter) Close() error {
	if fw.closed {
		return nil
	}
	var count [8]byte
	binary.LittleEndian.PutUint64(count[:], fw.frames)
	if err := writeRawFrame(fw.w, endFrameName, count[:], new(uint64)); err != nil {
		return err
	}
	fw.closed = true
	return nil
}

func writeRawFrame(w io.Writer, name string, payload []byte, count *uint64) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(name)))
	crc := crc32.NewIEEE()
	crc.Write([]byte(name))
	crc.Write(payload)
	var plen [8]byte
	binary.LittleEndian.PutUint64(plen[:], uint64(len(payload)))
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	for _, p := range [][]byte{hdr[:], []byte(name), plen[:], payload, tail[:]} {
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	*count++
	return nil
}

// FrameReader consumes a framed stream.
type FrameReader struct {
	r     io.Reader
	seen  uint64
	ended bool
}

// NewFrameReader validates the stream magic and returns a reader.
func NewFrameReader(r io.Reader, magic string) (*FrameReader, error) {
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrCorrupt, err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, got, magic)
	}
	return &FrameReader{r: r}, nil
}

// Next returns the next frame. It returns io.EOF after the trailer
// frame; a stream that ends WITHOUT a trailer yields an ErrCorrupt-
// wrapped error instead, so truncation at a frame boundary is caught.
func (fr *FrameReader) Next() (name string, payload []byte, err error) {
	if fr.ended {
		return "", nil, io.EOF
	}
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return "", nil, fmt.Errorf("%w: stream ended without trailer frame: %v", ErrCorrupt, err)
	}
	nameLen := binary.LittleEndian.Uint32(hdr[:])
	if nameLen == 0 || nameLen > maxNameLen {
		return "", nil, fmt.Errorf("%w: frame name length %d out of range", ErrCorrupt, nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(fr.r, nameBuf); err != nil {
		return "", nil, fmt.Errorf("%w: truncated frame name: %v", ErrCorrupt, err)
	}
	var plen [8]byte
	if _, err := io.ReadFull(fr.r, plen[:]); err != nil {
		return "", nil, fmt.Errorf("%w: truncated payload length: %v", ErrCorrupt, err)
	}
	payloadLen := binary.LittleEndian.Uint64(plen[:])
	payload, err = readPayload(fr.r, payloadLen)
	if err != nil {
		return "", nil, err
	}
	var tail [4]byte
	if _, err := io.ReadFull(fr.r, tail[:]); err != nil {
		return "", nil, fmt.Errorf("%w: truncated frame CRC: %v", ErrCorrupt, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(nameBuf)
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(tail[:]) {
		return "", nil, fmt.Errorf("%w: CRC mismatch in frame %q", ErrCorrupt, nameBuf)
	}
	name = string(nameBuf)
	fr.seen++
	if name == endFrameName {
		if len(payload) != 8 || binary.LittleEndian.Uint64(payload) != fr.seen-1 {
			return "", nil, fmt.Errorf("%w: trailer frame count mismatch", ErrCorrupt)
		}
		fr.ended = true
		return "", nil, io.EOF
	}
	return name, payload, nil
}

// crc32ChecksumFrame computes the frame checksum over name ‖ payload.
func crc32ChecksumFrame(name, payload []byte) uint32 {
	crc := crc32.NewIEEE()
	crc.Write(name)
	crc.Write(payload)
	return crc.Sum32()
}

// readPayload reads n bytes in bounded chunks, so a corrupted length
// prefix fails with a clean truncation error instead of a giant
// allocation.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	var buf bytes.Buffer
	for n > 0 {
		chunk := n
		if chunk > frameReadChunk {
			chunk = frameReadChunk
		}
		if _, err := io.CopyN(&buf, r, int64(chunk)); err != nil {
			return nil, fmt.Errorf("%w: truncated frame payload: %v", ErrCorrupt, err)
		}
		n -= chunk
	}
	return buf.Bytes(), nil
}
