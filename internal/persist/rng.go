package persist

import (
	"fmt"
	"math/rand"
)

// Source is a checkpointable math/rand source. It wraps the stdlib
// generator — so every component that switches to it keeps producing
// EXACTLY the sequence it produced before — and counts draws, which is
// all the state a restore needs: re-seed and fast-forward the same
// number of steps. (The stdlib additive-lagged-Fibonacci source advances
// one step per Int63 or Uint64 call, so a single counter covers both.)
//
// A draw costs a few nanoseconds, so fast-forwarding even millions of
// draws is cheap next to re-executing the training rounds that consumed
// them. Source is NOT safe for concurrent use — exactly like the
// rand.Rand values it feeds; owners guard it with their own locks.
type Source struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

var _ rand.Source64 = (*Source)(nil)

// NewSource creates a source with the given seed, at draw zero.
func NewSource(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw counter.
func (s *Source) Seed(seed int64) {
	s.seed, s.draws = seed, 0
	s.src.Seed(seed)
}

// Draws reports how many values have been drawn since seeding.
func (s *Source) Draws() uint64 { return s.draws }

const sourceSnapshotVersion = 1

// Snapshot captures (seed, draw count).
func (s *Source) Snapshot() []byte {
	var e Encoder
	e.U8(sourceSnapshotVersion)
	e.I64(s.seed)
	e.U64(s.draws)
	return e.Finish()
}

// Restore rewinds the source to a snapshot: re-seed, then fast-forward
// the recorded number of draws.
func (s *Source) Restore(b []byte) error {
	d := NewDecoder(b)
	if v := d.U8(); d.Err() == nil && v != sourceSnapshotVersion {
		return fmt.Errorf("%w: unsupported rng snapshot version %d", ErrCorrupt, v)
	}
	seed := d.I64()
	draws := d.U64()
	if err := d.Err(); err != nil {
		return fmt.Errorf("rng snapshot: %w", err)
	}
	s.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.draws = draws
	return nil
}
