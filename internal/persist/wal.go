package persist

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// RoundRecord is one committed FL round in the write-ahead log. Round
// execution is seed-deterministic, so the record does not store model
// bytes — only what recovery needs to REPLAY the round from the previous
// checkpoint and to verify the replay reproduced the original:
type RoundRecord struct {
	// Round is the 1-based round number the record commits.
	Round uint64
	// Epoch is the checkpoint epoch the round built on (diagnostic).
	Epoch uint64
	// Seed is the round seed drawn from the trainer RNG; a replayed
	// round must draw the identical seed or the state diverged.
	Seed int64
	// ClientDigest fingerprints the selected client set + request order.
	ClientDigest uint64
}

const walRecordVersion = 1

// walRecordFrame names WAL record frames.
const walRecordFrame = "round"

func (r RoundRecord) encode() []byte {
	var e Encoder
	e.U8(walRecordVersion)
	e.U64(r.Round)
	e.U64(r.Epoch)
	e.I64(r.Seed)
	e.U64(r.ClientDigest)
	return e.Finish()
}

func decodeRoundRecord(p []byte) (RoundRecord, error) {
	d := NewDecoder(p)
	var r RoundRecord
	if v := d.U8(); d.Err() == nil && v != walRecordVersion {
		return r, fmt.Errorf("%w: unsupported WAL record version %d", ErrCorrupt, v)
	}
	r.Round = d.U64()
	r.Epoch = d.U64()
	r.Seed = d.I64()
	r.ClientDigest = d.U64()
	if d.Err() != nil {
		return r, d.Err()
	}
	return r, nil
}

// WAL is the append-only round log. Appends are fsynced before they
// return, so a record in the log means the round's effects are fully
// reconstructible: a crash between a round's completion and its append
// simply loses the record, and recovery re-executes that round
// identically (the RNG state in the checkpoint makes it deterministic).
type WAL struct {
	f    *os.File
	path string
}

// OpenWAL opens (creating if absent) a WAL for appending. A brand-new
// file gets the magic header; an existing file keeps its records.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(WALMagic); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &WAL{f: f, path: path}, nil
}

// Append durably writes one record (frame write + fsync).
func (w *WAL) Append(rec RoundRecord) error {
	if err := writeRawFrame(w.f, walRecordFrame, rec.encode(), new(uint64)); err != nil {
		return err
	}
	return w.f.Sync()
}

// AppendRaw durably writes one arbitrary named record (frame write +
// fsync). It is the generic sibling of Append for callers with their
// own record vocabulary — the cluster coordinator logs round begins,
// gradient batches and commits this way. Names must not collide with
// the typed "round" frame unless the payload is a RoundRecord.
func (w *WAL) AppendRaw(name string, payload []byte) error {
	if err := writeRawFrame(w.f, name, payload, new(uint64)); err != nil {
		return err
	}
	return w.f.Sync()
}

// Reset truncates the log back to an empty (magic-only) file — called
// after its records have been collapsed into a checkpoint. The
// truncate-then-rewrite is not atomic, but every intermediate state
// (empty file, bare magic) reads as an empty log, so a crash inside
// Reset loses nothing that was not already checkpointed.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	// The file is O_APPEND; after truncate the next write lands at 0.
	if _, err := w.f.WriteString(WALMagic); err != nil {
		return err
	}
	return w.f.Sync()
}

// RawRecord is one generic WAL record: the frame name plus its payload.
type RawRecord struct {
	Name    string
	Payload []byte
}

// ReadRawWALFile parses a WAL into generic records with the same
// torn-tail tolerance as ReadWALFile: parsing stops at the first frame
// that fails its CRC or decodes short, `torn` reports whether such a
// tail was discarded, and a missing file reads as an empty log. Unlike
// ReadWALFile it accepts any frame name, so typed and raw records can
// share one log.
func ReadRawWALFile(path string) (records []RawRecord, torn bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(WALMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, true, nil
	}
	if string(magic) != WALMagic {
		return nil, false, fmt.Errorf("%w: bad WAL magic %q", ErrCorrupt, magic)
	}
	for {
		name, payload, err := readOneFrame(r)
		if err == io.EOF {
			return records, false, nil
		}
		if err != nil {
			return records, true, nil
		}
		records = append(records, RawRecord{Name: name, Payload: payload})
	}
}

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }

// Path returns the WAL file path.
func (w *WAL) Path() string { return w.path }

// ReadWALFile parses a WAL, tolerating a torn tail: a crash can truncate
// the final append mid-frame, so parsing stops at the first frame that
// fails to decode and `torn` reports whether such a tail was discarded.
// Records before the tear are returned intact (each is independently
// CRC-protected). A missing file reads as an empty log.
func ReadWALFile(path string) (records []RoundRecord, torn bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	return readWAL(bufio.NewReader(f))
}

func readWAL(r io.Reader) (records []RoundRecord, torn bool, err error) {
	magic := make([]byte, len(WALMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		// Empty or shorter-than-magic file: treat as empty log (torn at 0).
		return nil, true, nil
	}
	if string(magic) != WALMagic {
		return nil, false, fmt.Errorf("%w: bad WAL magic %q", ErrCorrupt, magic)
	}
	for {
		name, payload, err := readOneFrame(r)
		if err == io.EOF {
			return records, false, nil
		}
		if err != nil {
			// Torn or corrupt tail: keep everything before it.
			return records, true, nil
		}
		if name != walRecordFrame {
			return records, true, nil
		}
		rec, err := decodeRoundRecord(payload)
		if err != nil {
			return records, true, nil
		}
		records = append(records, rec)
	}
}

// readOneFrame reads a single raw frame (no trailer handling — the WAL
// has no trailer, it is terminated by EOF). io.EOF is returned only at a
// clean frame boundary.
func readOneFrame(r io.Reader) (string, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return "", nil, io.EOF
		}
		return "", nil, fmt.Errorf("%w: torn frame header: %v", ErrCorrupt, err)
	}
	nameLen := uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24
	if nameLen == 0 || nameLen > maxNameLen {
		return "", nil, fmt.Errorf("%w: frame name length %d out of range", ErrCorrupt, nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return "", nil, fmt.Errorf("%w: torn frame name: %v", ErrCorrupt, err)
	}
	var plen [8]byte
	if _, err := io.ReadFull(r, plen[:]); err != nil {
		return "", nil, fmt.Errorf("%w: torn payload length: %v", ErrCorrupt, err)
	}
	n := uint64(plen[0]) | uint64(plen[1])<<8 | uint64(plen[2])<<16 | uint64(plen[3])<<24 |
		uint64(plen[4])<<32 | uint64(plen[5])<<40 | uint64(plen[6])<<48 | uint64(plen[7])<<56
	payload, err := readPayload(r, n)
	if err != nil {
		return "", nil, err
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return "", nil, fmt.Errorf("%w: torn frame CRC: %v", ErrCorrupt, err)
	}
	want := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24
	crc := crc32ChecksumFrame(nameBuf, payload)
	if crc != want {
		return "", nil, fmt.Errorf("%w: CRC mismatch in frame %q", ErrCorrupt, nameBuf)
	}
	return string(nameBuf), payload, nil
}
