package persist

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file so that readers of path never observe a
// partial write: the content goes to a temp file in the same directory,
// is fsynced, and is renamed over path; the directory is then fsynced so
// the rename itself is durable. A crash at any byte offset during the
// write leaves either the old file or the new one — never a torn mix.
func WriteFileAtomic(path string, write func(w *os.File) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("persist: write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Filesystems that do not support directory fsync are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// Some filesystems (and some CI sandboxes) reject fsync on
		// directories; the rename is still ordered after the file fsync.
		return nil
	}
	return nil
}
