package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRawWALRoundTrip: AppendRaw records read back in order with names
// and payloads intact, interleaved with typed round records in one log.
func TestRawWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rounds.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	if err := w.AppendRaw("cluster/begin", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(RoundRecord{Round: 7, Epoch: 2, Seed: -5, ClientDigest: 9}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRaw("cluster/commit", nil); err != nil {
		t.Fatal(err)
	}

	recs, torn, err := ReadRawWALFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean log read as torn")
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Name != "cluster/begin" || !bytes.Equal(recs[0].Payload, []byte{1, 2, 3}) {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Name != "round" {
		t.Fatalf("record 1 name = %q, want the typed round frame", recs[1].Name)
	}
	if recs[2].Name != "cluster/commit" || len(recs[2].Payload) != 0 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
}

// TestRawWALTornTail: a truncated final frame is discarded, the frames
// before it survive, and torn is reported.
func TestRawWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rounds.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRaw("a", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRaw("b", []byte("second-to-be-torn")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	recs, torn, err := ReadRawWALFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatal("truncated tail not reported torn")
	}
	if len(recs) != 1 || recs[0].Name != "a" || string(recs[0].Payload) != "first" {
		t.Fatalf("surviving records = %+v, want just %q", recs, "a")
	}
}

// TestRawWALReset: Reset empties the log (and a missing file reads as
// an empty log, not an error).
func TestRawWALReset(t *testing.T) {
	dir := t.TempDir()
	if recs, torn, err := ReadRawWALFile(filepath.Join(dir, "absent.wal")); err != nil || torn || len(recs) != 0 {
		t.Fatalf("missing file: recs=%v torn=%v err=%v", recs, torn, err)
	}

	path := filepath.Join(dir, "rounds.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendRaw("x", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := ReadRawWALFile(path)
	if err != nil || torn || len(recs) != 0 {
		t.Fatalf("after reset: recs=%v torn=%v err=%v", recs, torn, err)
	}
	// The log keeps working after a reset.
	if err := w.AppendRaw("y", []byte("again")); err != nil {
		t.Fatal(err)
	}
	recs, _, err = ReadRawWALFile(path)
	if err != nil || len(recs) != 1 || recs[0].Name != "y" {
		t.Fatalf("after reset+append: recs=%v err=%v", recs, err)
	}
}
