package pathoram

import (
	"math"
	"testing"

	"repro/internal/device"
)

// Access-pattern tests: replay workloads against a recording device and
// check the statistical properties the ORAM guarantees — every access
// reads one uniformly random path, independent of WHICH block is
// accessed (the bus-level adversary of Sec 4.1 learns nothing).

// observedLeaves runs `accesses` reads through a recorded ORAM and
// returns the leaf index touched by each access.
func observedLeaves(t *testing.T, pickBlock func(i int) uint64, accesses int) []int {
	t.Helper()
	rec := device.NewRecorder(device.NewDRAM(1 << 30))
	o, err := New(Config{NumBlocks: 256, BlockSize: 16, Seed: 42}, rec)
	if err != nil {
		t.Fatal(err)
	}
	levels := o.Levels()
	leaves := int(o.Leaves())
	bucket := uint64(o.BucketStoredSize())
	rec.Clear()
	out := make([]int, 0, accesses)
	for i := 0; i < accesses; i++ {
		if _, _, err := o.Read(pickBlock(i)); err != nil {
			t.Fatal(err)
		}
		reads := rec.ReadAddrs()
		if len(reads) != levels {
			t.Fatalf("access %d: %d bucket reads, want %d", i, len(reads), levels)
		}
		// The deepest read is the leaf bucket; its heap index minus the
		// internal-node count is the leaf number.
		leafBucket := int(reads[levels-1] / bucket)
		leaf := leafBucket - (leaves - 1)
		if leaf < 0 || leaf >= leaves {
			t.Fatalf("access %d: decoded leaf %d out of range", i, leaf)
		}
		out = append(out, leaf)
		rec.Clear()
	}
	return out
}

func leafHistogram(leaves []int, n int) []float64 {
	h := make([]float64, n)
	for _, l := range leaves {
		h[l]++
	}
	for i := range h {
		h[i] /= float64(len(leaves))
	}
	return h
}

func TestAccessPathsUniform(t *testing.T) {
	const accesses = 4000
	o, _ := New(Config{NumBlocks: 256, BlockSize: 16, Seed: 42}, device.NewDRAM(1<<30))
	nLeaves := int(o.Leaves())

	// Hammer one single block: the adversary still sees uniform leaves.
	fixed := observedLeaves(t, func(int) uint64 { return 7 }, accesses)
	h := leafHistogram(fixed, nLeaves)
	want := 1.0 / float64(nLeaves)
	sigma := math.Sqrt(want * (1 - want) / accesses)
	for leaf, p := range h {
		if math.Abs(p-want) > 6*sigma {
			t.Errorf("leaf %d frequency %.4f deviates from uniform %.4f", leaf, p, want)
		}
	}
}

func TestAccessPatternIndependentOfBlock(t *testing.T) {
	// Compare the leaf distribution when hammering block 7 vs block 200:
	// total-variation distance must be small (the trace cannot identify
	// the block).
	const accesses = 4000
	o, _ := New(Config{NumBlocks: 256, BlockSize: 16, Seed: 42}, device.NewDRAM(1<<30))
	nLeaves := int(o.Leaves())

	a := leafHistogram(observedLeaves(t, func(int) uint64 { return 7 }, accesses), nLeaves)
	b := leafHistogram(observedLeaves(t, func(int) uint64 { return 200 }, accesses), nLeaves)
	var tv float64
	for i := range a {
		tv += math.Abs(a[i]-b[i]) / 2
	}
	// Two independent samples of the same uniform distribution have
	// expected TV distance ≈ sqrt(nLeaves/(π·accesses)); allow 3×.
	limit := 3 * math.Sqrt(float64(nLeaves)/(math.Pi*accesses))
	if tv > limit {
		t.Errorf("TV distance between block-7 and block-200 traces = %.4f (limit %.4f)", tv, limit)
	}
}

func TestEveryAccessReadsAndWritesOneFullPath(t *testing.T) {
	rec := device.NewRecorder(device.NewDRAM(1 << 30))
	o, err := New(Config{NumBlocks: 128, BlockSize: 8, Seed: 1}, rec)
	if err != nil {
		t.Fatal(err)
	}
	rec.Clear()
	if _, _, err := o.Read(3); err != nil {
		t.Fatal(err)
	}
	reads, writes := rec.ReadAddrs(), rec.WriteAddrs()
	if len(reads) != o.Levels() || len(writes) != o.Levels() {
		t.Fatalf("reads=%d writes=%d, want %d each", len(reads), len(writes), o.Levels())
	}
	// The written path is the read path (eviction targets the same path).
	read := map[uint64]bool{}
	for _, a := range reads {
		read[a] = true
	}
	for _, a := range writes {
		if !read[a] {
			t.Errorf("write to %d outside the read path", a)
		}
	}
}
