package pathoram

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/position"
)

func newRecursiveMap(t *testing.T, numBlocks uint64, numLeaves uint32) (*RecursiveMap, *device.Sim) {
	t.Helper()
	dev := device.NewDRAM(1 << 30)
	rm, err := NewRecursiveMap(RecursiveMapConfig{
		NumBlocks:       numBlocks,
		NumLeaves:       numLeaves,
		EntriesPerBlock: 8,
		ThresholdBytes:  256, // force several recursion levels
		Seed:            1,
	}, dev)
	if err != nil {
		t.Fatal(err)
	}
	return rm, dev
}

func TestRecursiveMapDepth(t *testing.T) {
	rm, _ := newRecursiveMap(t, 4096, 1024)
	// 4096 entries → 512 blocks (2 KiB > 256 B) → 64 blocks (256 B ≤
	// threshold, residual map held directly). Two ORAM levels.
	if rm.Levels() != 2 {
		t.Errorf("Levels = %d, want 2", rm.Levels())
	}
	if rm.RequiredBytes() == 0 {
		t.Error("zero footprint")
	}
}

func TestRecursiveMapSetGet(t *testing.T) {
	rm, _ := newRecursiveMap(t, 1024, 256)
	rm.Set(5, 99)
	if got := rm.Get(5); got != 99 {
		t.Errorf("Get(5) = %d, want 99", got)
	}
	rm.Set(5, 7)
	if got := rm.Get(5); got != 7 {
		t.Errorf("Get(5) = %d after reset, want 7", got)
	}
}

func TestRecursiveMapUnassignedDeterministic(t *testing.T) {
	rm, _ := newRecursiveMap(t, 1024, 256)
	a := rm.Get(77)
	b := rm.Get(77)
	if a != b {
		t.Errorf("unassigned leaf unstable: %d vs %d", a, b)
	}
	if a >= 256 {
		t.Errorf("leaf %d out of range", a)
	}
}

func TestRecursiveMapMatchesSparseSemantics(t *testing.T) {
	// Random interleaving of Get/Set must behave exactly like a plain
	// map with PRF defaults.
	rm, _ := newRecursiveMap(t, 512, 128)
	ref := map[uint64]uint32{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		id := uint64(rng.Intn(512))
		if rng.Intn(2) == 0 {
			leaf := uint32(rng.Intn(128))
			rm.Set(id, leaf)
			ref[id] = leaf
		} else {
			got := rm.Get(id)
			if want, ok := ref[id]; ok && got != want {
				t.Fatalf("iter %d id %d: got %d want %d", i, id, got, want)
			}
		}
	}
}

func TestRecursiveGetSetSingleAccess(t *testing.T) {
	rm, _ := newRecursiveMap(t, 1024, 256)
	before := rm.levels[0].Stats().Accesses
	rm.GetSet(3, 42)
	after := rm.levels[0].Stats().Accesses
	if after-before != 1 {
		t.Errorf("GetSet cost %d level-0 accesses, want 1", after-before)
	}
}

func TestRecursiveLookupTouchesEveryLevel(t *testing.T) {
	rm, _ := newRecursiveMap(t, 4096, 1024)
	var before []uint64
	for _, o := range rm.levels {
		before = append(before, o.Stats().Accesses)
	}
	rm.GetSet(1234, 5)
	for i, o := range rm.levels {
		if o.Stats().Accesses == before[i] {
			t.Errorf("level %d not touched by a lookup", i)
		}
	}
}

func TestRecursiveMapAccessTimeAccumulates(t *testing.T) {
	rm, _ := newRecursiveMap(t, 1024, 256)
	rm.GetSet(1, 2)
	if rm.AccessTime() <= 0 {
		t.Error("no modelled time accumulated")
	}
}

func TestDataORAMWithRecursiveMap(t *testing.T) {
	// End-to-end: a data ORAM whose position map is fully recursive must
	// still satisfy read-your-writes.
	dev := device.NewDRAM(1 << 30)
	const numBlocks = 512
	leaves, _ := Geometry(numBlocks, 4, 8)
	rm, err := NewRecursiveMap(RecursiveMapConfig{
		NumBlocks:       numBlocks,
		NumLeaves:       leaves,
		EntriesPerBlock: 8,
		ThresholdBytes:  256,
		Seed:            3,
	}, dev)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{
		NumBlocks:   numBlocks,
		BlockSize:   16,
		Seed:        4,
		PositionMap: rm,
		BaseAddr:    rm.RequiredBytes(), // chain occupies the device head
	}, dev)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	ref := map[uint64][]byte{}
	for i := 0; i < 1500; i++ {
		id := uint64(rng.Intn(numBlocks))
		if rng.Intn(2) == 0 {
			data := make([]byte, 16)
			rng.Read(data)
			if _, err := o.Write(id, data); err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
			ref[id] = data
		} else {
			got, _, err := o.Read(id)
			if err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
			want, ok := ref[id]
			if !ok {
				want = make([]byte, 16)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("iter %d id %d: mismatch", i, id)
			}
		}
	}
}

func TestRecursiveMapValidation(t *testing.T) {
	dev := device.NewDRAM(1 << 20)
	if _, err := NewRecursiveMap(RecursiveMapConfig{}, dev); err == nil {
		t.Error("empty config accepted")
	}
	// A map small enough to fit the threshold should be rejected (caller
	// should use a flat map).
	if _, err := NewRecursiveMap(RecursiveMapConfig{
		NumBlocks: 8, NumLeaves: 4, ThresholdBytes: 1 << 20,
	}, dev); err == nil {
		t.Error("trivially small recursive map accepted")
	}
}

func TestRecursiveMapImplementsInterfaces(t *testing.T) {
	var _ position.Map = (*RecursiveMap)(nil)
	var _ position.GetSetter = (*RecursiveMap)(nil)
}

func TestRecursiveMapOutOfRangePanics(t *testing.T) {
	rm, _ := newRecursiveMap(t, 1024, 16)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range id did not panic")
		}
	}()
	rm.Get(1024)
}
