// Package pathoram implements Path ORAM (Stefanov et al., CCS'13), the
// baseline tree ORAM of the FEDORA paper (Sec 2.3), over a simulated
// storage device.
//
// Data is stored in fixed-size blocks in a binary tree of buckets, each
// with Z slots. Every block is assigned to a path (leaf); the invariant
// is that a block is either in a bucket along its path or in the stash.
// An access reads the whole path into the stash, serves the block,
// reassigns it to a fresh random path, and greedily evicts stash blocks
// back onto the same path. To an observer, every access is a read and a
// write of one uniformly random path.
//
// The package also provides the paper's "Path ORAM+" baseline
// configuration (Sec 6.1): buckets padded to the SSD page size so each
// bucket access is whole-page, with the structure placed on the SSD.
//
// Two operating modes:
//
//   - Functional: real payloads, sealed with the TEE engine, stored in
//     the device's sparse page store. Used by tests, examples, and
//     accuracy studies.
//   - Phantom: identical access *accounting* (same bucket counts, sizes,
//     page rounding, modelled durations) with no payload movement, so
//     production-scale tables (250M entries) can be swept cheaply. A test
//     asserts functional and phantom modes report identical traffic.
package pathoram

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/device"
	"repro/internal/persist"
	"repro/internal/position"
	"repro/internal/stash"
	"repro/internal/tee"
)

// Op selects between a read and a write access.
type Op int

const (
	// OpRead returns the block's current contents.
	OpRead Op = iota
	// OpWrite replaces the block's contents.
	OpWrite
)

// slotMetaSize is the serialized per-slot metadata: 8-byte block ID,
// 4-byte leaf, 1-byte valid flag.
const slotMetaSize = 13

// invalidBlockID marks an empty slot on disk.
const invalidBlockID = ^uint64(0)

// Config parameterizes a Path ORAM instance.
type Config struct {
	// NumBlocks is N, the number of logical blocks (embedding rows).
	NumBlocks uint64
	// BlockSize is the payload size in bytes (the paper's 64–256 B rows).
	BlockSize int
	// BucketSlots is Z, the number of block slots per bucket.
	BucketSlots int
	// Amplification is the target ratio of total tree slots to N. Path
	// ORAM traditionally uses 6–8; RAW/Ring-style trees use 1.5–2
	// (Sec 3.2 of the paper). Default 8.
	Amplification float64
	// StashCapacity bounds the stash; 0 derives a default from tree depth.
	StashCapacity int
	// Seed makes the ORAM deterministic.
	Seed int64
	// Engine encrypts buckets; nil stores plaintext (still functional).
	Engine *tee.Engine
	// Phantom enables accounting-only mode.
	Phantom bool
	// AlignBucketToPage pads the stored bucket to a multiple of the
	// device page size (the SSD-friendly layout of Path ORAM+/Sec 6.6).
	AlignBucketToPage bool
	// InitFn supplies the initial contents of a block that has never been
	// written (e.g. the embedding table's initialization); nil means
	// zeros. This virtualizes table pre-loading so constructing a
	// terabyte-scale ORAM does not require N writes.
	InitFn func(id uint64) []byte
	// PositionMap overrides the built-in sparse map — used by the
	// recursive construction, where an ORAM's position map lives inside
	// the next smaller ORAM. It must cover NumBlocks blocks over exactly
	// this ORAM's leaf count (compute it in advance with Geometry).
	PositionMap position.Map
	// BaseAddr offsets the tree on the device, letting multiple ORAMs
	// (e.g. the recursive position-map chain) share one device.
	BaseAddr uint64
}

func (c *Config) setDefaults() {
	if c.BucketSlots == 0 {
		c.BucketSlots = 4
	}
	if c.Amplification == 0 {
		c.Amplification = 8
	}
	if c.StashCapacity == 0 {
		c.StashCapacity = 200
	}
}

func (c *Config) validate() error {
	if c.NumBlocks == 0 {
		return errors.New("pathoram: NumBlocks must be positive")
	}
	if c.BlockSize <= 0 {
		return errors.New("pathoram: BlockSize must be positive")
	}
	if c.BucketSlots <= 0 {
		return errors.New("pathoram: BucketSlots must be positive")
	}
	if c.Amplification < 1 {
		return errors.New("pathoram: Amplification must be >= 1")
	}
	return nil
}

// Stats counts ORAM-level events (device-level traffic is on the device).
type Stats struct {
	Accesses    uint64
	BucketReads uint64
	BucketWrite uint64
	Time        time.Duration
}

// ORAM is a Path ORAM instance.
type ORAM struct {
	cfg    Config
	dev    device.Device
	pos    position.Map
	stash  *stash.Stash
	src    *persist.Source // checkpointable state behind rng
	rng    *rand.Rand
	engine *tee.Engine

	levels     int    // tree levels including root and leaves
	leaves     uint32 // number of leaf buckets (power of two)
	bucketSize int    // stored bytes per bucket (after sealing/padding)

	// counters holds per-bucket write counters for encryption freshness;
	// absent means never written. In real FEDORA hardware these live in
	// the parent-group scheme of Sec 5.2; the simulator keeps them host-
	// side with equivalent semantics.
	counters map[uint32]uint64

	stats Stats
}

// nextPow2 returns the smallest power of two >= v (v >= 1).
func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// Geometry computes the tree shape for a config: leaf count and levels.
func Geometry(numBlocks uint64, bucketSlots int, amplification float64) (leaves uint32, levels int) {
	// total slots ≈ 2 * leaves * Z; target amplification*N slots.
	target := uint64(amplification*float64(numBlocks))/uint64(2*bucketSlots) + 1
	l := nextPow2(target)
	if l < 2 {
		l = 2
	}
	levels = 1
	for p := uint64(1); p < l; p <<= 1 {
		levels++
	}
	return uint32(l), levels
}

// New creates a Path ORAM on dev. The device must be large enough for the
// tree; use RequiredBytes to size it.
func New(cfg Config, dev device.Device) (*ORAM, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	leaves, levels := Geometry(cfg.NumBlocks, cfg.BucketSlots, cfg.Amplification)
	src := persist.NewSource(cfg.Seed)
	o := &ORAM{
		cfg:      cfg,
		dev:      dev,
		src:      src,
		rng:      rand.New(src),
		engine:   cfg.Engine,
		levels:   levels,
		leaves:   leaves,
		stash:    stash.New(cfg.StashCapacity),
		counters: make(map[uint32]uint64),
	}
	o.bucketSize = o.storedBucketSize()
	if need := cfg.BaseAddr + o.RequiredBytes(); dev.Capacity() < need {
		return nil, fmt.Errorf("pathoram: device capacity %d < required %d", dev.Capacity(), need)
	}
	if cfg.PositionMap != nil {
		if cfg.PositionMap.NumLeaves() != leaves {
			return nil, fmt.Errorf("pathoram: position map covers %d leaves, tree has %d",
				cfg.PositionMap.NumLeaves(), leaves)
		}
		o.pos = cfg.PositionMap
	} else {
		o.pos = position.NewSparse(cfg.NumBlocks, leaves, uint64(cfg.Seed)+1)
	}
	return o, nil
}

// storedBucketSize computes the on-device size of one bucket.
func (o *ORAM) storedBucketSize() int {
	plain := o.cfg.BucketSlots * (slotMetaSize + o.cfg.BlockSize)
	stored := plain
	if o.engine != nil {
		stored = tee.SealedSize(plain)
	}
	if o.cfg.AlignBucketToPage {
		ps := o.dev.PageSize()
		if ps > 1 {
			stored = (stored + ps - 1) / ps * ps
		}
	}
	return stored
}

// RequiredBytes is the device footprint of the whole tree.
func (o *ORAM) RequiredBytes() uint64 {
	return uint64(o.numBuckets()) * uint64(o.bucketSize)
}

// numBuckets returns the total bucket count (2*leaves - 1).
func (o *ORAM) numBuckets() uint32 { return 2*o.leaves - 1 }

// Levels returns the tree depth (root inclusive).
func (o *ORAM) Levels() int { return o.levels }

// Leaves returns the number of leaves.
func (o *ORAM) Leaves() uint32 { return o.leaves }

// BucketStoredSize returns the on-device bucket size in bytes.
func (o *ORAM) BucketStoredSize() int { return o.bucketSize }

// StashPeak exposes the stash high-water mark for occupancy tests.
func (o *ORAM) StashPeak() int { return o.stash.Peak() }

// StashLen exposes the current stash occupancy.
func (o *ORAM) StashLen() int { return o.stash.Len() }

// Stats returns accumulated ORAM counters.
func (o *ORAM) Stats() Stats { return o.stats }

// ResetStats zeroes ORAM counters (not device counters).
func (o *ORAM) ResetStats() { o.stats = Stats{} }

// bucketIndex returns the heap index of the bucket at `level` on the
// path to `leaf` (root is level 0, index 0).
func (o *ORAM) bucketIndex(leaf uint32, level int) uint32 {
	return (uint32(1) << level) - 1 + (leaf >> (o.levels - 1 - level))
}

// bucketAddr returns the device byte offset of bucket idx.
func (o *ORAM) bucketAddr(idx uint32) uint64 {
	return o.cfg.BaseAddr + uint64(idx)*uint64(o.bucketSize)
}

// PathBytes is the bytes moved by reading or writing one full path.
func (o *ORAM) PathBytes() uint64 {
	return uint64(o.levels) * uint64(o.bucketSize)
}

// randomLeaf draws a uniform leaf.
func (o *ORAM) randomLeaf() uint32 { return uint32(o.rng.Int63n(int64(o.leaves))) }

// Access performs one ORAM access. For OpRead, the returned slice holds
// the block contents; for OpWrite, data supplies the new contents (its
// length must equal BlockSize) and the returned slice is nil. The
// returned duration is the modelled device time of the access.
func (o *ORAM) Access(op Op, id uint64, data []byte) ([]byte, time.Duration, error) {
	if id >= o.cfg.NumBlocks {
		return nil, 0, fmt.Errorf("pathoram: block %d out of range %d", id, o.cfg.NumBlocks)
	}
	if op == OpWrite && len(data) != o.cfg.BlockSize {
		return nil, 0, fmt.Errorf("pathoram: write size %d != block size %d", len(data), o.cfg.BlockSize)
	}
	o.stats.Accesses++
	if o.cfg.Phantom {
		d := o.chargePath(device.OpRead) + o.chargePath(device.OpWrite)
		o.stats.Time += d
		var out []byte
		if op == OpRead {
			out = make([]byte, o.cfg.BlockSize)
		}
		return out, d, nil
	}

	newLeaf := o.randomLeaf()
	leaf := position.GetSet(o.pos, id, newLeaf)

	dur, err := o.readPath(leaf)
	if err != nil {
		return nil, dur, err
	}

	blk := o.stash.Get(id)
	if blk == nil {
		blk = &stash.Block{ID: id, Data: o.initBlock(id)}
		if err := o.stash.Put(blk); err != nil {
			return nil, dur, err
		}
	}
	blk.Leaf = newLeaf
	var out []byte
	if op == OpRead {
		out = append([]byte(nil), blk.Data...)
	} else {
		blk.Data = append(blk.Data[:0], data...)
	}

	d2, err := o.evictPath(leaf)
	dur += d2
	if err != nil {
		return nil, dur, err
	}
	o.stats.Time += dur
	return out, dur, nil
}

// Update performs a single ORAM access that reads block id, lets fn
// mutate its contents in place, and writes it back — the read-modify-
// write the buffer ORAM needs for gradient aggregation (one path read +
// one path write, indistinguishable from any other access).
func (o *ORAM) Update(id uint64, fn func(data []byte)) (time.Duration, error) {
	if id >= o.cfg.NumBlocks {
		return 0, fmt.Errorf("pathoram: block %d out of range %d", id, o.cfg.NumBlocks)
	}
	o.stats.Accesses++
	if o.cfg.Phantom {
		d := o.chargePath(device.OpRead) + o.chargePath(device.OpWrite)
		o.stats.Time += d
		return d, nil
	}
	newLeaf := o.randomLeaf()
	leaf := position.GetSet(o.pos, id, newLeaf)
	dur, err := o.readPath(leaf)
	if err != nil {
		return dur, err
	}
	blk := o.stash.Get(id)
	if blk == nil {
		blk = &stash.Block{ID: id, Data: o.initBlock(id)}
		if err := o.stash.Put(blk); err != nil {
			return dur, err
		}
	}
	blk.Leaf = newLeaf
	fn(blk.Data)
	d2, err := o.evictPath(leaf)
	dur += d2
	if err != nil {
		return dur, err
	}
	o.stats.Time += dur
	return dur, nil
}

// Read is shorthand for Access(OpRead, ...).
func (o *ORAM) Read(id uint64) ([]byte, time.Duration, error) {
	return o.Access(OpRead, id, nil)
}

// Write is shorthand for Access(OpWrite, ...).
func (o *ORAM) Write(id uint64, data []byte) (time.Duration, error) {
	_, d, err := o.Access(OpWrite, id, data)
	return d, err
}

// Peek returns block id's current contents without any ORAM access,
// accounting, or state change — for evaluation/debugging only.
func (o *ORAM) Peek(id uint64) ([]byte, error) {
	if id >= o.cfg.NumBlocks {
		return nil, fmt.Errorf("pathoram: block %d out of range %d", id, o.cfg.NumBlocks)
	}
	if o.cfg.Phantom {
		return make([]byte, o.cfg.BlockSize), nil
	}
	if blk := o.stash.Get(id); blk != nil {
		return append([]byte(nil), blk.Data...), nil
	}
	leaf := o.pos.Get(id)
	buf := make([]byte, o.bucketSize)
	for l := 0; l < o.levels; l++ {
		idx := o.bucketIndex(leaf, l)
		ctr, written := o.counters[idx]
		if !written {
			continue
		}
		if err := o.dev.PeekAt(o.bucketAddr(idx), buf); err != nil {
			return nil, err
		}
		plain, err := o.openBucket(buf, idx, ctr)
		if err != nil {
			return nil, err
		}
		for s := 0; s < o.cfg.BucketSlots; s++ {
			off := s * (slotMetaSize + o.cfg.BlockSize)
			if plain[off+12] == 1 && getUint64(plain[off:]) == id {
				return append([]byte(nil), plain[off+slotMetaSize:off+slotMetaSize+o.cfg.BlockSize]...), nil
			}
		}
	}
	return o.initBlock(id), nil
}

func (o *ORAM) initBlock(id uint64) []byte {
	if o.cfg.InitFn != nil {
		b := o.cfg.InitFn(id)
		if len(b) != o.cfg.BlockSize {
			panic(fmt.Sprintf("pathoram: InitFn returned %d bytes, want %d", len(b), o.cfg.BlockSize))
		}
		return append([]byte(nil), b...)
	}
	return make([]byte, o.cfg.BlockSize)
}

// chargePath accounts a full-path transfer without moving data.
func (o *ORAM) chargePath(op device.Op) time.Duration {
	d := o.dev.ChargeN(op, o.bucketSize, o.levels)
	if op == device.OpRead {
		o.stats.BucketReads += uint64(o.levels)
	} else {
		o.stats.BucketWrite += uint64(o.levels)
	}
	return d
}

// readPath brings every valid block on the path to leaf into the stash.
func (o *ORAM) readPath(leaf uint32) (time.Duration, error) {
	var total time.Duration
	buf := make([]byte, o.bucketSize)
	for l := 0; l < o.levels; l++ {
		idx := o.bucketIndex(leaf, l)
		o.stats.BucketReads++
		d, err := o.dev.ReadAt(o.bucketAddr(idx), buf)
		total += d
		if err != nil {
			return total, err
		}
		ctr, written := o.counters[idx]
		if !written {
			continue // never-written bucket: all slots empty
		}
		plain, err := o.openBucket(buf, idx, ctr)
		if err != nil {
			return total, err
		}
		if err := o.unpackBucket(plain); err != nil {
			return total, err
		}
	}
	return total, nil
}

// evictPath writes buckets along the path to leaf from the leaf level up,
// greedily filling each with evictable stash blocks.
func (o *ORAM) evictPath(leaf uint32) (time.Duration, error) {
	var total time.Duration
	for l := o.levels - 1; l >= 0; l-- {
		idx := o.bucketIndex(leaf, l)
		picked := o.stash.EvictableFor(leaf, l, o.levels, o.cfg.BucketSlots)
		plain := o.packBucket(picked)
		for _, b := range picked {
			o.stash.Remove(b.ID)
		}
		ctr := o.counters[idx] + 1
		o.counters[idx] = ctr
		stored := o.sealBucket(plain, idx, ctr)
		o.stats.BucketWrite++
		d, err := o.dev.WriteAt(o.bucketAddr(idx), stored)
		total += d
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// packBucket serializes up to Z blocks into a plaintext bucket image.
func (o *ORAM) packBucket(blocks []*stash.Block) []byte {
	plain := make([]byte, o.cfg.BucketSlots*(slotMetaSize+o.cfg.BlockSize))
	for s := 0; s < o.cfg.BucketSlots; s++ {
		off := s * (slotMetaSize + o.cfg.BlockSize)
		if s < len(blocks) {
			b := blocks[s]
			putUint64(plain[off:], b.ID)
			putUint32(plain[off+8:], b.Leaf)
			plain[off+12] = 1
			copy(plain[off+slotMetaSize:], b.Data)
		} else {
			putUint64(plain[off:], invalidBlockID)
		}
	}
	return plain
}

// unpackBucket moves valid slots of a plaintext bucket into the stash.
func (o *ORAM) unpackBucket(plain []byte) error {
	for s := 0; s < o.cfg.BucketSlots; s++ {
		off := s * (slotMetaSize + o.cfg.BlockSize)
		if plain[off+12] != 1 {
			continue
		}
		id := getUint64(plain[off:])
		if id == invalidBlockID {
			continue
		}
		blk := &stash.Block{
			ID:   id,
			Leaf: getUint32(plain[off+8:]),
			Data: append([]byte(nil), plain[off+slotMetaSize:off+slotMetaSize+o.cfg.BlockSize]...),
		}
		if err := o.stash.Put(blk); err != nil {
			return err
		}
	}
	return nil
}

// sealBucket encrypts (if configured) and pads the plaintext image to the
// stored bucket size.
func (o *ORAM) sealBucket(plain []byte, idx uint32, ctr uint64) []byte {
	var body []byte
	if o.engine != nil {
		body = o.engine.Seal(plain, uint64(idx), ctr)
	} else {
		body = plain
	}
	if len(body) < o.bucketSize {
		padded := make([]byte, o.bucketSize)
		copy(padded, body)
		return padded
	}
	return body
}

// openBucket reverses sealBucket.
func (o *ORAM) openBucket(stored []byte, idx uint32, ctr uint64) ([]byte, error) {
	plainLen := o.cfg.BucketSlots * (slotMetaSize + o.cfg.BlockSize)
	if o.engine == nil {
		return stored[:plainLen], nil
	}
	return o.engine.Open(stored[:tee.SealedSize(plainLen)], uint64(idx), ctr)
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func putUint32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint32(b []byte) uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(b[i]) << (8 * i)
	}
	return v
}
