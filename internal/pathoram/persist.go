package pathoram

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/persist"
	"repro/internal/position"
)

// Snapshot/Restore cover the ORAM's dynamic state: the stash, the
// position map, the per-bucket write counters (group-encryption IVs),
// the leaf-assignment RNG, and the event counters. Bucket bytes live on
// the backing device and are captured by the device's own snapshot;
// restore both together. ORAMs built with an external position map
// (the recursive construction) snapshot everything EXCEPT the map —
// the next smaller ORAM owns that state and snapshots it itself.

const pathSnapshotVersion = 1

// Snapshot serializes the ORAM's dynamic state.
func (o *ORAM) Snapshot() ([]byte, error) {
	var posBlob []byte
	ownPos := o.cfg.PositionMap == nil
	if ownPos {
		snap, ok := o.pos.(position.Snapshotter)
		if !ok {
			return nil, fmt.Errorf("pathoram: position map %T does not support snapshots", o.pos)
		}
		b, err := snap.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("pathoram: position map: %w", err)
		}
		posBlob = b
	}
	stashBlob, err := o.stash.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("pathoram: stash: %w", err)
	}

	var e persist.Encoder
	e.U8(pathSnapshotVersion)
	// Geometry guard.
	e.U64(o.cfg.NumBlocks)
	e.U32(uint32(o.cfg.BlockSize))
	e.U32(uint32(o.cfg.BucketSlots))
	e.U32(uint32(o.levels))
	e.U32(o.leaves)
	e.U64(o.cfg.BaseAddr)
	e.Bool(o.cfg.Phantom)
	e.Bool(ownPos)
	// Event counters.
	e.U64(o.stats.Accesses)
	e.U64(o.stats.BucketReads)
	e.U64(o.stats.BucketWrite)
	e.I64(int64(o.stats.Time))
	e.Bytes(o.src.Snapshot())
	e.Bytes(stashBlob)
	e.Bytes(posBlob)
	// Per-bucket write counters, sorted by bucket index.
	idxs := make([]uint32, 0, len(o.counters))
	for idx := range o.counters {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	e.U64(uint64(len(idxs)))
	for _, idx := range idxs {
		e.U32(idx)
		e.U64(o.counters[idx])
	}
	return e.Finish(), nil
}

// Restore replaces the ORAM's dynamic state with a snapshot taken from
// an identically configured instance.
func (o *ORAM) Restore(b []byte) error {
	d := persist.NewDecoder(b)
	if v := d.U8(); d.Err() == nil && v != pathSnapshotVersion {
		return fmt.Errorf("pathoram: unsupported snapshot version %d", v)
	}
	numBlocks := d.U64()
	blockSize := d.U32()
	bucketSlots := d.U32()
	levels := d.U32()
	leaves := d.U32()
	baseAddr := d.U64()
	phantom := d.Bool()
	ownPos := d.Bool()
	if d.Err() == nil {
		if numBlocks != o.cfg.NumBlocks || int(blockSize) != o.cfg.BlockSize ||
			int(bucketSlots) != o.cfg.BucketSlots || int(levels) != o.levels ||
			leaves != o.leaves || baseAddr != o.cfg.BaseAddr || phantom != o.cfg.Phantom {
			return fmt.Errorf("pathoram: snapshot geometry (N=%d bs=%d Z=%d levels=%d leaves=%d base=%d phantom=%v) does not match this ORAM",
				numBlocks, blockSize, bucketSlots, levels, leaves, baseAddr, phantom)
		}
		if ownPos != (o.cfg.PositionMap == nil) {
			return fmt.Errorf("pathoram: snapshot position-map ownership (own=%v) does not match this ORAM", ownPos)
		}
	}
	var st Stats
	st.Accesses = d.U64()
	st.BucketReads = d.U64()
	st.BucketWrite = d.U64()
	st.Time = time.Duration(d.I64())
	rngBlob := d.Bytes()
	stashBlob := d.Bytes()
	posBlob := d.Bytes()
	n := d.U64()
	counters := make(map[uint32]uint64, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		idx := d.U32()
		counters[idx] = d.U64()
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("pathoram: snapshot: %w", err)
	}

	if err := o.src.Restore(rngBlob); err != nil {
		return fmt.Errorf("pathoram: rng: %w", err)
	}
	if err := o.stash.Restore(stashBlob); err != nil {
		return fmt.Errorf("pathoram: stash: %w", err)
	}
	if ownPos {
		if err := o.pos.(position.Snapshotter).Restore(posBlob); err != nil {
			return fmt.Errorf("pathoram: position map: %w", err)
		}
	}
	o.stats = st
	o.counters = counters
	return nil
}
