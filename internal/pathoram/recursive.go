package pathoram

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/position"
)

// This file implements the recursive position map of Stefanov et al.
// (Sec 2.3 of the FEDORA paper: "If the position map is too large, it
// can also be stored off-chip in separate recursive ORAMs").
//
// The position map of an N-block ORAM is packed, EntriesPerBlock leaf
// assignments per block, into a smaller Path ORAM; that ORAM's own
// position map recurses into a yet smaller ORAM, until the residual map
// fits ThresholdBytes and is held directly (standing in for the paper's
// trusted controller metadata). Every level is wired: looking up one
// data-block position costs exactly one ORAM access per level, via
// position.GetSetter.

// RecursiveMapConfig parameterizes the recursion.
type RecursiveMapConfig struct {
	// NumBlocks / NumLeaves describe the map being virtualized: the data
	// ORAM's block count and leaf count.
	NumBlocks uint64
	NumLeaves uint32
	// EntriesPerBlock is how many uint32 positions pack into one block of
	// a map ORAM (default 64 → 256-byte blocks).
	EntriesPerBlock int
	// ThresholdBytes stops the recursion once a level's map fits (default
	// 64 KiB).
	ThresholdBytes uint64
	// Seed drives all levels' randomness.
	Seed int64
}

func (c *RecursiveMapConfig) setDefaults() {
	if c.EntriesPerBlock == 0 {
		c.EntriesPerBlock = 64
	}
	if c.ThresholdBytes == 0 {
		c.ThresholdBytes = 64 << 10
	}
}

// RecursiveMap is a position.Map backed by a chain of Path ORAMs on a
// device. It implements position.GetSetter.
type RecursiveMap struct {
	top    *oramBackedMap
	levels []*ORAM
}

// NewRecursiveMap builds the wired ORAM chain on dev.
func NewRecursiveMap(cfg RecursiveMapConfig, dev device.Device) (*RecursiveMap, error) {
	cfg.setDefaults()
	if cfg.NumBlocks == 0 || cfg.NumLeaves == 0 {
		return nil, fmt.Errorf("pathoram: recursive map needs NumBlocks and NumLeaves")
	}
	// Plan the chain: counts[i] is the block count of map-level i, which
	// stores the positions of level i−1's blocks (level −1 = data ORAM).
	epb := uint64(cfg.EntriesPerBlock)
	var counts []uint64
	n := cfg.NumBlocks
	for n*4 > cfg.ThresholdBytes {
		blocks := (n + epb - 1) / epb
		counts = append(counts, blocks)
		n = blocks
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("pathoram: map of %d blocks fits threshold %d — use a flat map",
			cfg.NumBlocks, cfg.ThresholdBytes)
	}
	// Every level's geometry is deterministic, so leaf counts are known
	// before construction; each level's tree is packed at its own base
	// address on the shared device.
	leavesOf := make([]uint32, len(counts))
	for i, c := range counts {
		leavesOf[i], _ = Geometry(c, 4, 8)
	}
	// Build from the deepest level up. The deepest level's own position
	// map is a plain sparse map (the residual fits the threshold).
	rm := &RecursiveMap{levels: make([]*ORAM, len(counts))}
	var inner position.Map // position map for the level being built
	var base uint64
	for i := len(counts) - 1; i >= 0; i-- {
		oCfg := Config{
			NumBlocks:   counts[i],
			BlockSize:   4 * cfg.EntriesPerBlock,
			BucketSlots: 4,
			Seed:        cfg.Seed + int64(i) + 1,
			PositionMap: inner,
			BaseAddr:    base,
		}
		o, err := New(oCfg, dev)
		if err != nil {
			return nil, fmt.Errorf("pathoram: recursive level %d: %w", i, err)
		}
		rm.levels[i] = o
		base += o.RequiredBytes()
		if i > 0 {
			// Level i−1's positions live in this ORAM.
			inner = &oramBackedMap{
				store:     o,
				numBlocks: counts[i-1],
				numLeaves: leavesOf[i-1],
				epb:       cfg.EntriesPerBlock,
				seed:      uint64(cfg.Seed) + uint64(i)*7919,
			}
		}
	}
	rm.top = &oramBackedMap{
		store:     rm.levels[0],
		numBlocks: cfg.NumBlocks,
		numLeaves: cfg.NumLeaves,
		epb:       cfg.EntriesPerBlock,
		seed:      uint64(cfg.Seed) + 104729,
	}
	return rm, nil
}

// Levels reports the recursion depth.
func (rm *RecursiveMap) Levels() int { return len(rm.levels) }

// AccessTime is the accumulated modelled device time of map lookups
// across all levels.
func (rm *RecursiveMap) AccessTime() time.Duration {
	var d time.Duration
	d += rm.top.time
	for _, o := range rm.levels {
		if m, ok := o.pos.(*oramBackedMap); ok {
			d += m.time
		}
	}
	return d
}

// RequiredBytes is the chain's total device footprint.
func (rm *RecursiveMap) RequiredBytes() uint64 {
	var total uint64
	for _, o := range rm.levels {
		total += o.RequiredBytes()
	}
	return total
}

// Get implements position.Map.
func (rm *RecursiveMap) Get(id uint64) uint32 { return rm.top.Get(id) }

// Set implements position.Map.
func (rm *RecursiveMap) Set(id uint64, leaf uint32) { rm.top.Set(id, leaf) }

// GetSet implements position.GetSetter.
func (rm *RecursiveMap) GetSet(id uint64, newLeaf uint32) uint32 {
	return rm.top.GetSet(id, newLeaf)
}

// NumLeaves implements position.Map.
func (rm *RecursiveMap) NumLeaves() uint32 { return rm.top.numLeaves }

// SizeBytes implements position.Map.
func (rm *RecursiveMap) SizeBytes() uint64 { return rm.RequiredBytes() }

// oramBackedMap stores uint32 positions inside an ORAM, EntriesPerBlock
// per block. Because 0 is a valid leaf, each stored entry reserves its
// top bit as an "assigned" flag; unassigned entries report a
// deterministic PRF leaf, matching position.Sparse semantics (leaves are
// far below 2³¹ in any realizable configuration).
type oramBackedMap struct {
	store     *ORAM
	numBlocks uint64
	numLeaves uint32
	epb       int
	seed      uint64
	time      time.Duration
}

var _ position.Map = (*oramBackedMap)(nil)
var _ position.GetSetter = (*oramBackedMap)(nil)

func (m *oramBackedMap) initLeaf(id uint64) uint32 {
	// Same splitmix-style PRF as position.Sparse (via a throwaway Sparse).
	return position.NewSparse(m.numBlocks, m.numLeaves, m.seed).Get(id)
}

// GetSet reads and replaces one position in a single ORAM access.
func (m *oramBackedMap) GetSet(id uint64, newLeaf uint32) uint32 {
	if id >= m.numBlocks {
		panic(fmt.Sprintf("pathoram: recursive map id %d out of range %d", id, m.numBlocks))
	}
	if newLeaf >= m.numLeaves {
		panic(fmt.Sprintf("pathoram: recursive map leaf %d out of range %d", newLeaf, m.numLeaves))
	}
	block, slot := id/uint64(m.epb), int(id%uint64(m.epb))
	var old uint32
	var fresh bool
	d, err := m.store.Update(block, func(data []byte) {
		fresh = !entryAssigned(data, slot)
		old = entryLeaf(data, slot)
		setEntry(data, slot, newLeaf)
	})
	m.time += d
	if err != nil {
		panic(fmt.Sprintf("pathoram: recursive map update: %v", err))
	}
	if fresh {
		old = m.initLeaf(id)
	}
	return old
}

// Get implements position.Map (costs one ORAM access; prefer GetSet).
func (m *oramBackedMap) Get(id uint64) uint32 {
	if id >= m.numBlocks {
		panic(fmt.Sprintf("pathoram: recursive map id %d out of range %d", id, m.numBlocks))
	}
	block, slot := id/uint64(m.epb), int(id%uint64(m.epb))
	var out uint32
	var fresh bool
	d, err := m.store.Update(block, func(data []byte) {
		fresh = !entryAssigned(data, slot)
		out = entryLeaf(data, slot)
	})
	m.time += d
	if err != nil {
		panic(fmt.Sprintf("pathoram: recursive map get: %v", err))
	}
	if fresh {
		return m.initLeaf(id)
	}
	return out
}

// Set implements position.Map.
func (m *oramBackedMap) Set(id uint64, leaf uint32) { m.GetSet(id, leaf) }

// NumLeaves implements position.Map.
func (m *oramBackedMap) NumLeaves() uint32 { return m.numLeaves }

// SizeBytes implements position.Map.
func (m *oramBackedMap) SizeBytes() uint64 { return m.numBlocks * 4 }

// Stored-entry codec: little-endian uint32 with the top bit as the
// "assigned" flag.
const assignedBit = uint32(1) << 31

func entryRaw(data []byte, slot int) uint32 {
	off := slot * 4
	return uint32(data[off]) | uint32(data[off+1])<<8 |
		uint32(data[off+2])<<16 | uint32(data[off+3])<<24
}

func entryAssigned(data []byte, slot int) bool {
	return entryRaw(data, slot)&assignedBit != 0
}

func entryLeaf(data []byte, slot int) uint32 {
	return entryRaw(data, slot) &^ assignedBit
}

func setEntry(data []byte, slot int, leaf uint32) {
	v := leaf | assignedBit
	off := slot * 4
	data[off] = byte(v)
	data[off+1] = byte(v >> 8)
	data[off+2] = byte(v >> 16)
	data[off+3] = byte(v >> 24)
}
