package pathoram

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/device"
)

func newPersistORAM(t *testing.T) (*ORAM, *device.Sim) {
	t.Helper()
	cfg := Config{NumBlocks: 128, BlockSize: 32, Seed: 5}
	probe := device.NewSSD(1 << 40)
	trial, err := New(cfg, probe)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.NewSSD(trial.RequiredBytes())
	o, err := New(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	return o, dev
}

func drive(t *testing.T, o *ORAM, rng *rand.Rand, steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		id := uint64(rng.Intn(128))
		if rng.Intn(2) == 0 {
			if _, _, err := o.Read(id); err != nil {
				t.Fatal(err)
			}
		} else {
			data := make([]byte, 32)
			rng.Read(data)
			if _, err := o.Write(id, data); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSnapshotResumeEquivalence(t *testing.T) {
	a, devA := newPersistORAM(t)
	drive(t, a, rand.New(rand.NewSource(11)), 120)

	oramSnap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	devSnap, err := devA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	drive(t, a, rand.New(rand.NewSource(12)), 80)

	b, devB := newPersistORAM(t)
	if err := devB.Restore(devSnap); err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(oramSnap); err != nil {
		t.Fatal(err)
	}
	drive(t, b, rand.New(rand.NewSource(12)), 80)

	if a.Stats() != b.Stats() {
		t.Fatalf("stats %+v != %+v", a.Stats(), b.Stats())
	}
	if a.StashLen() != b.StashLen() {
		t.Fatalf("stash %d != %d", a.StashLen(), b.StashLen())
	}
	for id := uint64(0); id < 128; id++ {
		pa, err := a.Peek(id)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.Peek(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pa, pb) {
			t.Fatalf("block %d diverged after resume", id)
		}
	}
}

func TestSnapshotExternalPositionMapRefused(t *testing.T) {
	// The recursive construction's outer ORAM snapshots everything except
	// the external position map; a snapshot from an own-map ORAM must not
	// restore into it (ownership flag guard).
	own, _ := newPersistORAM(t)
	snap, err := own.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{NumBlocks: 128, BlockSize: 32, Seed: 5}
	leaves, _ := Geometry(cfg.NumBlocks, 4, 8)
	cfg.PositionMap = newTestPosMap(leaves)
	probe := device.NewSSD(1 << 40)
	trial, err := New(cfg, probe)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := New(cfg, device.NewSSD(trial.RequiredBytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := ext.Restore(snap); err == nil {
		t.Fatal("own-map snapshot restored into external-map ORAM")
	}
}

// newTestPosMap builds a standalone map for the external-map test.
func newTestPosMap(leaves uint32) *externalMap {
	return &externalMap{leaves: leaves, pos: map[uint64]uint32{}}
}

type externalMap struct {
	leaves uint32
	pos    map[uint64]uint32
}

func (m *externalMap) Get(id uint64) uint32 { return m.pos[id] % m.leaves }
func (m *externalMap) Set(id uint64, leaf uint32) {
	m.pos[id] = leaf
}
func (m *externalMap) GetSet(id uint64, leaf uint32) uint32 {
	old := m.Get(id)
	m.Set(id, leaf)
	return old
}
func (m *externalMap) NumLeaves() uint32 { return m.leaves }
func (m *externalMap) SizeBytes() uint64 { return 0 }
