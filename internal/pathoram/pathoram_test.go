package pathoram

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/tee"
)

func newTestORAM(t *testing.T, cfg Config) (*ORAM, *device.Sim) {
	t.Helper()
	cfg.setDefaults()
	leaves, levels := Geometry(cfg.NumBlocks, cfg.BucketSlots, cfg.Amplification)
	_ = leaves
	_ = levels
	dev := device.NewDRAM(1 << 30)
	o, err := New(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	return o, dev
}

func testEngine() *tee.Engine {
	var key [32]byte
	key[0] = 9
	return tee.NewEngine(key)
}

func TestGeometry(t *testing.T) {
	leaves, levels := Geometry(1024, 4, 8)
	// target slots ≈ 8*1024 = 8192; 2*leaves*4 ≈ 8192 → leaves ≈ 1024.
	if leaves < 512 || leaves > 2048 {
		t.Errorf("leaves = %d", leaves)
	}
	if levels < 10 || levels > 12 {
		t.Errorf("levels = %d", levels)
	}
	// Power of two.
	if leaves&(leaves-1) != 0 {
		t.Errorf("leaves %d not power of two", leaves)
	}
	// Tiny N still yields a valid tree.
	leaves, levels = Geometry(1, 4, 8)
	if leaves < 2 || levels < 2 {
		t.Errorf("tiny geometry: leaves=%d levels=%d", leaves, levels)
	}
}

func TestReadUnwrittenReturnsInit(t *testing.T) {
	o, _ := newTestORAM(t, Config{NumBlocks: 64, BlockSize: 16, Seed: 1})
	got, _, err := o.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Errorf("unwritten block = %v, want zeros", got)
	}
}

func TestInitFn(t *testing.T) {
	initFn := func(id uint64) []byte {
		b := make([]byte, 8)
		b[0] = byte(id)
		return b
	}
	o, _ := newTestORAM(t, Config{NumBlocks: 32, BlockSize: 8, Seed: 2, InitFn: initFn})
	got, _, err := o.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Errorf("InitFn block = %v", got)
	}
}

func TestWriteThenRead(t *testing.T) {
	o, _ := newTestORAM(t, Config{NumBlocks: 128, BlockSize: 32, Seed: 3})
	want := bytes.Repeat([]byte{0xAB}, 32)
	if _, err := o.Write(10, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := o.Read(10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read back %v", got[:4])
	}
}

func TestReadYourWritesRandomWorkload(t *testing.T) {
	for _, withCrypto := range []bool{false, true} {
		cfg := Config{NumBlocks: 256, BlockSize: 16, Seed: 4, StashCapacity: 500}
		if withCrypto {
			cfg.Engine = testEngine()
		}
		o, _ := newTestORAM(t, cfg)
		rng := rand.New(rand.NewSource(5))
		ref := map[uint64][]byte{}
		for i := 0; i < 3000; i++ {
			id := uint64(rng.Intn(256))
			if rng.Intn(2) == 0 {
				data := make([]byte, 16)
				rng.Read(data)
				if _, err := o.Write(id, data); err != nil {
					t.Fatalf("crypto=%v iter %d write: %v", withCrypto, i, err)
				}
				ref[id] = data
			} else {
				got, _, err := o.Read(id)
				if err != nil {
					t.Fatalf("crypto=%v iter %d read: %v", withCrypto, i, err)
				}
				want, ok := ref[id]
				if !ok {
					want = make([]byte, 16)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("crypto=%v iter %d id %d: got %v want %v", withCrypto, i, id, got[:4], want[:4])
				}
			}
		}
	}
}

func TestStashStaysBounded(t *testing.T) {
	o, _ := newTestORAM(t, Config{NumBlocks: 512, BlockSize: 8, Seed: 6, StashCapacity: 400})
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 8)
	for i := 0; i < 5000; i++ {
		if _, err := o.Write(uint64(rng.Intn(512)), data); err != nil {
			t.Fatal(err)
		}
	}
	// Empirically the Path ORAM stash stays tiny (Z=4); generous bound.
	if o.StashPeak() > 100 {
		t.Errorf("stash peak = %d, suspiciously large", o.StashPeak())
	}
}

func TestAccessTrafficShape(t *testing.T) {
	o, dev := newTestORAM(t, Config{NumBlocks: 128, BlockSize: 16, Seed: 8})
	dev.ResetStats()
	if _, _, err := o.Read(0); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	levels := uint64(o.Levels())
	if st.Reads != levels || st.Writes != levels {
		t.Errorf("reads=%d writes=%d, want %d each (one full path in, one out)",
			st.Reads, st.Writes, levels)
	}
	wantBytes := levels * uint64(o.BucketStoredSize())
	if st.BytesRead != wantBytes || st.BytesWritten != wantBytes {
		t.Errorf("bytesRead=%d bytesWritten=%d, want %d", st.BytesRead, st.BytesWritten, wantBytes)
	}
}

func TestPhantomMatchesFunctionalTraffic(t *testing.T) {
	run := func(phantom bool) device.Stats {
		cfg := Config{NumBlocks: 128, BlockSize: 16, Seed: 9, Phantom: phantom}
		dev := device.NewDRAM(1 << 30)
		o, err := New(cfg, dev)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 16)
		for i := uint64(0); i < 50; i++ {
			if _, err := o.Write(i%128, data); err != nil {
				t.Fatal(err)
			}
			if _, _, err := o.Read(i % 128); err != nil {
				t.Fatal(err)
			}
		}
		return dev.Stats()
	}
	f, p := run(false), run(true)
	if f.Reads != p.Reads || f.Writes != p.Writes ||
		f.BytesRead != p.BytesRead || f.BytesWritten != p.BytesWritten {
		t.Errorf("functional %+v != phantom %+v", f, p)
	}
}

func TestPageAlignedBuckets(t *testing.T) {
	dev := device.NewSSD(1 << 32)
	o, err := New(Config{
		NumBlocks: 1024, BlockSize: 64, BucketSlots: 60,
		Amplification: 2, Seed: 10, AlignBucketToPage: true, Engine: testEngine(),
	}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if o.BucketStoredSize()%4096 != 0 {
		t.Errorf("bucket size %d not page aligned", o.BucketStoredSize())
	}
	if _, _, err := o.Read(1); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptedBucketsUnreadableOnDevice(t *testing.T) {
	dev := device.NewDRAM(1 << 30)
	o, err := New(Config{NumBlocks: 64, BlockSize: 32, Seed: 11, Engine: testEngine()}, dev)
	if err != nil {
		t.Fatal(err)
	}
	secret := bytes.Repeat([]byte{0x5A}, 32)
	if _, err := o.Write(3, secret); err != nil {
		t.Fatal(err)
	}
	// Scan the whole device image for the plaintext.
	img := make([]byte, o.RequiredBytes())
	if _, err := dev.ReadAt(0, img); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(img, secret[:16]) {
		t.Error("plaintext payload visible on untrusted device")
	}
}

func TestConfigValidation(t *testing.T) {
	dev := device.NewDRAM(1 << 20)
	bad := []Config{
		{NumBlocks: 0, BlockSize: 8},
		{NumBlocks: 8, BlockSize: 0},
		{NumBlocks: 8, BlockSize: 8, BucketSlots: -1},
		{NumBlocks: 8, BlockSize: 8, Amplification: 0.5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, dev); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestDeviceTooSmall(t *testing.T) {
	dev := device.NewDRAM(128)
	if _, err := New(Config{NumBlocks: 1024, BlockSize: 64, Seed: 1}, dev); err == nil {
		t.Error("undersized device accepted")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	o, _ := newTestORAM(t, Config{NumBlocks: 16, BlockSize: 8, Seed: 12})
	if _, _, err := o.Read(16); err == nil {
		t.Error("out-of-range read accepted")
	}
	if _, err := o.Write(3, make([]byte, 7)); err == nil {
		t.Error("wrong-size write accepted")
	}
}

func TestStatsCount(t *testing.T) {
	o, _ := newTestORAM(t, Config{NumBlocks: 64, BlockSize: 8, Seed: 13})
	for i := 0; i < 5; i++ {
		if _, _, err := o.Read(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := o.Stats()
	if st.Accesses != 5 {
		t.Errorf("Accesses = %d", st.Accesses)
	}
	if st.BucketReads != uint64(5*o.Levels()) || st.BucketWrite != uint64(5*o.Levels()) {
		t.Errorf("bucket reads/writes = %d/%d", st.BucketReads, st.BucketWrite)
	}
	if st.Time <= 0 {
		t.Error("modelled time not positive")
	}
	o.ResetStats()
	if o.Stats().Accesses != 0 {
		t.Error("ResetStats did not zero")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []byte {
		o, _ := newTestORAM(t, Config{NumBlocks: 64, BlockSize: 8, Seed: 99})
		data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		for i := uint64(0); i < 20; i++ {
			if _, err := o.Write(i%64, data); err != nil {
				t.Fatal(err)
			}
		}
		got, _, err := o.Read(5)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different results")
	}
}
