package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/fdp"
	"repro/internal/fl"
	"repro/internal/persist"
	"repro/internal/shard"
)

// TestChaosRemoteFLRun is the chaos capstone: a remote federated
// training run over HTTP while a fault plan kills the server's SSDs
// under it — a transient error on shard 0 and silent bit-flip
// corruption on shard 1 (detected by the TEE's auth tags). The run must
// complete, /healthz must transition healthy → degraded → healthy
// around a quarantine+recover cycle, and the post-recovery controller
// snapshot must restore bit-identically into a fresh controller.
//
// EvictPeriod 1 matters: with the default period the stash absorbs this
// small workload and the wrapped SSDs never see an op to fault.
func TestChaosRemoteFLRun(t *testing.T) {
	dsCfg := dataset.MovieLensConfig()
	dsCfg.NumItems, dsCfg.NumUsers, dsCfg.SamplesPerUser = 120, 24, 12
	ds := dataset.Generate(dsCfg)

	plan := &fault.Plan{
		Seed: 42,
		Rules: []fault.Rule{
			// Two transient read errors on shard 0's SSD. After skips the
			// single read the priming round performs, so the first fault
			// fires on the next round's begin — mid-round, where the
			// degraded state is externally observable. The second fires on
			// the first shard-0 read after that recovery, which is the
			// opening trainer round's begin, so the FL layer sees (and
			// reports) rows degraded to unavailable. The budget then runs
			// out and the device behaves for the rest of the run.
			{Device: "shard0/ssd", Op: "read", Kind: fault.KindTransient, P: 1, After: 1, Count: 2},
			// Silent corruption of pages stored on shard 1's SSD later in
			// the run: the damage persists until a subsequent read, where
			// the TEE rejects the flipped bucket (ErrAuthFailed) and the
			// shard quarantines on the integrity violation.
			// After 50 places the flips in the second trainer round, after
			// shard 0's transient budget is exhausted — the two shards'
			// fault windows never overlap, so no round is lost outright.
			{Device: "shard1/ssd", Kind: fault.KindBitflip, Op: "write", After: 50, Count: 2},
		},
	}
	// Track the injectors the plan creates so the test can assert the
	// faults actually fired rather than silently missing the workload.
	var injMu sync.Mutex
	injectors := map[string]*fault.Injector{}
	wrap := func(name string, d device.Device) device.Device {
		w := plan.Wrap(name, d)
		if in, ok := w.(*fault.Injector); ok {
			injMu.Lock()
			injectors[name] = in
			injMu.Unlock()
		}
		return w
	}

	cfg := fl.Config{
		Dataset: ds, Dim: 4, Hidden: 8,
		Epsilon:         fdp.EpsilonInfinity,
		ClientsPerRound: 6, MaxFeaturesPerClient: 16,
		LocalLR: 0.1, LocalEpochs: 1,
		Seed:    7,
		Shards:  2,
		Encrypt: true, EvictPeriod: 1,
		Workers: 1,
	}
	serverCfg := cfg
	serverCfg.WrapDevice = wrap
	ctrl, err := fl.BuildController(serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := persist.OpenManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.NewServer(ctrl,
		api.WithAutoRecover(mgr, 1),
		api.WithMaxInFlight(8),
	).Handler())
	defer srv.Close()

	healthz := func() api.HealthzResponse {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h api.HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	c, err := client.New(client.Config{
		BaseURL: srv.URL, Timeout: 30 * time.Second,
		BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		RetrySeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Phase 1 — healthy before any fault has had a chance to fire.
	if h := healthz(); h.Status != shard.StatusHealthy {
		t.Fatalf("initial health = %q, want healthy", h.Status)
	}

	// Phase 2 — a fault-free priming round populates the ORAM trees (on a
	// fresh tree the stash absorbs everything until the finish evictions,
	// so there is nothing on disk to fault yet).
	info, err := c.BeginRound(ctx, [][]uint64{{2, 3}})
	if err != nil {
		t.Fatalf("priming begin: %v", err)
	}
	if _, err := c.FinishRound(ctx, info.RoundID); err != nil {
		t.Fatalf("priming finish: %v", err)
	}
	if h := healthz(); h.Status != shard.StatusHealthy {
		t.Fatalf("post-priming health = %q, want healthy", h.Status)
	}

	// Phase 3 — the next round's oblivious reads trip shard 0's transient
	// fault. Degradation is visible mid-round; the finish triggers
	// auto-recovery from the newest checkpoint.
	info, err = c.BeginRound(ctx, [][]uint64{{2, 3}})
	if err != nil {
		t.Fatalf("degraded begin: %v", err)
	}
	h := healthz()
	if h.Status != shard.StatusDegraded {
		t.Fatalf("mid-round health = %q, want degraded", h.Status)
	}
	if !h.Shards[0].Quarantined || h.Shards[0].Cause == "" {
		t.Fatalf("shard 0 detail = %+v, want quarantined with cause", h.Shards[0])
	}
	entries, err := c.Entries(ctx, info.RoundID, []uint64{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].Unavailable || entries[0].OK {
		t.Fatalf("quarantined-shard entry = %+v, want unavailable", entries[0])
	}
	if _, err := c.FinishRound(ctx, info.RoundID); err != nil {
		t.Fatal(err)
	}
	h = healthz()
	if h.Status != shard.StatusHealthy {
		t.Fatalf("post-recovery health = %q (recover_error %q), want healthy",
			h.Status, h.RecoverError)
	}
	if h.Quarantines < 1 || h.Recoveries < 1 {
		t.Fatalf("lifetime counters = %d quarantines / %d recoveries, want ≥1 each",
			h.Quarantines, h.Recoveries)
	}

	// Phase 4 — a full remote FL run rides over the bit-flip faults:
	// shard 1 quarantines on the integrity violation mid-run, recovers at
	// that round's finish, and training completes regardless.
	trainer, err := client.NewRemoteTrainer(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	var unavailable int
	for round := 0; round < 6; round++ {
		rep, err := trainer.RunRound()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		unavailable += rep.UnavailableRows
	}

	h = healthz()
	if h.Status != shard.StatusHealthy {
		t.Fatalf("final health = %q (recover_error %q), want healthy", h.Status, h.RecoverError)
	}
	if h.Quarantines < 2 || h.Recoveries < 2 {
		t.Fatalf("final counters = %d quarantines / %d recoveries, want ≥2 each (transient + bit-flip)",
			h.Quarantines, h.Recoveries)
	}
	injMu.Lock()
	s0, s1 := injectors["shard0/ssd"], injectors["shard1/ssd"]
	injMu.Unlock()
	if s0 == nil || s1 == nil {
		t.Fatalf("injectors not wired: %v", injectors)
	}
	if got := s0.Counters().Transients; got != 2 {
		t.Errorf("shard0 transients = %d, want 2", got)
	}
	if got := s1.Counters().Bitflips; got == 0 {
		t.Error("no bit flips injected — the integrity-violation path never ran")
	}
	if unavailable == 0 {
		t.Error("no rows degraded to unavailable during the run")
	}

	// Phase 5 — no state corruption: the post-recovery snapshot restores
	// bit-identically into a fresh, fault-free controller.
	blob, err := ctrl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := fl.BuildController(cfg) // same config, no fault wrapping
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Restore(blob); err != nil {
		t.Fatal(err)
	}
	blob2, err := clean.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("snapshot round-trip not bit-identical: %d vs %d bytes", len(blob), len(blob2))
	}
}
