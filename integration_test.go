package repro

import (
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/fdp"
	"repro/internal/fedora"
	"repro/internal/recmodel"
)

// TestEndToEndFLOverHTTP is the capstone integration test: federated
// training of the recommendation model where every interaction with the
// FEDORA controller — round start, entry downloads, gradient uploads,
// round finish — travels through the HTTP API. It verifies the whole
// stack composes: dataset → clients → wire → controller → ε-FDP → RAW
// ORAM → buffer ORAM aggregation → table updates → measurable learning.
func TestEndToEndFLOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training is slow")
	}
	cfg := dataset.MovieLensConfig()
	cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 300, 80, 30
	ds := dataset.Generate(cfg)

	const dim = 8
	ctrl, err := fedora.New(fedora.Config{
		NumRows: ds.NumItems, Dim: dim,
		Epsilon:            fdp.EpsilonInfinity,
		MaxClientsPerRound: 20, MaxFeaturesPerClient: 100,
		LearningRate: 1, Seed: 1,
		InitRow: func(row uint64) []float32 {
			r := rand.New(rand.NewSource(int64(row) + 99))
			v := make([]float32, dim)
			for i := range v {
				v[i] = (r.Float32()*2 - 1) * 0.05
			}
			return v
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.NewServer(ctrl).Handler())
	defer srv.Close()
	client := api.NewClient(srv.URL)

	global := recmodel.New(recmodel.Config{
		Dim: dim, Hidden: 16, UsePrivate: true, LR: 0.1, Seed: 2,
	})
	rng := rand.New(rand.NewSource(3))

	evaluate := func() float64 {
		cache := recmodel.MapSource{}
		src := recmodel.FuncSource(func(id uint64) ([]float32, bool) {
			if v, ok := cache[id]; ok {
				return v, true
			}
			v, err := ctrl.PeekRow(id)
			if err != nil {
				return nil, false
			}
			cache[id] = v
			return v, true
		})
		var scores, labels []float32
		for _, u := range ds.Users {
			for _, s := range u.Test {
				p, ok := global.Predict(s, src)
				if !ok {
					continue
				}
				scores = append(scores, p)
				labels = append(labels, s.Label)
			}
		}
		return recmodel.AUC(scores, labels)
	}
	before := evaluate()

	const rounds, clientsPerRound = 25, 20
	for round := 0; round < rounds; round++ {
		// Select users and open the round over the wire.
		perm := rng.Perm(len(ds.Users))[:clientsPerRound]
		reqs := make([][]uint64, clientsPerRound)
		users := make([]*dataset.User, clientsPerRound)
		for i, idx := range perm {
			users[i] = &ds.Users[idx]
			reqs[i] = users[i].Rows(100)
		}
		if err := client.BeginRound(reqs); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}

		type upload struct {
			delta []float32
			n     int
		}
		var mlpUploads []upload
		for i, u := range users {
			// Download over HTTP.
			local := recmodel.MapSource{}
			downloaded := recmodel.MapSource{}
			for _, row := range reqs[i] {
				entry, ok, err := client.Entry(row)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					local[row] = entry
					downloaded[row] = append([]float32(nil), entry...)
				}
			}
			// Local training.
			localModel := recmodel.New(recmodel.Config{
				Dim: dim, Hidden: 16, UsePrivate: true, LR: 0.1, Seed: int64(u.ID),
			})
			if err := localModel.MLP.SetParams(global.MLP.Params()); err != nil {
				t.Fatal(err)
			}
			trained := 0
			for epoch := 0; epoch < 2; epoch++ {
				for _, s := range u.Train {
					step := recmodel.EmbGrad{}
					if _, ok := localModel.TrainStep(s, local, step); !ok {
						continue
					}
					for row, g := range step {
						vec := local[row]
						for j := range vec {
							vec[j] -= 0.1 * g[j]
						}
					}
					if epoch == 0 {
						trained++
					}
				}
			}
			if trained == 0 {
				continue
			}
			// Upload embedding deltas over HTTP.
			for row, down := range downloaded {
				vec := local[row]
				delta := make([]float32, dim)
				changed := false
				for j := range delta {
					delta[j] = down[j] - vec[j]
					if delta[j] != 0 {
						changed = true
					}
				}
				if !changed {
					continue
				}
				if _, err := client.SubmitGradient(row, delta, trained); err != nil {
					t.Fatal(err)
				}
			}
			// MLP delta (dense FedAvg outside FEDORA).
			gp := global.MLP.Params()
			lp := localModel.MLP.Params()
			delta := make([]float32, len(gp))
			for j := range delta {
				delta[j] = gp[j] - lp[j]
			}
			mlpUploads = append(mlpUploads, upload{delta, trained})
		}
		if _, err := client.FinishRound(); err != nil {
			t.Fatal(err)
		}
		// FedAvg the MLP.
		if len(mlpUploads) > 0 {
			var nTot float32
			for _, up := range mlpUploads {
				nTot += float32(up.n)
			}
			gp := global.MLP.Params()
			for _, up := range mlpUploads {
				w := float32(up.n) / nTot
				for j := range gp {
					gp[j] -= w * up.delta[j]
				}
			}
			if err := global.MLP.SetParams(gp); err != nil {
				t.Fatal(err)
			}
		}
	}

	after := evaluate()
	if after < before+0.03 {
		t.Errorf("no learning over HTTP: AUC %.4f → %.4f", before, after)
	}
	// The ORAM actually moved data: SSD saw reads, and far fewer writes
	// (RAW ORAM evictions only).
	st := ctrl.SSDDevice().Stats()
	if st.BytesRead == 0 {
		t.Error("no SSD reads")
	}
	if st.BytesWritten >= st.BytesRead {
		t.Errorf("SSD writes (%d) not below reads (%d)", st.BytesWritten, st.BytesRead)
	}
}
