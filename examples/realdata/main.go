// Real-data walkthrough: the synthetic generators stand in for
// MovieLens in this repository, but the loader accepts the actual
// ratings.csv format — drop in the real file and the same FL pipeline
// runs on it. This example builds a tiny in-memory "ratings.csv" to
// demonstrate the path end to end.
//
//	go run ./examples/realdata
//	go run ./examples/realdata /path/to/ml-20m/ratings.csv   # the real thing
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/fl"
)

func main() {
	var ds *dataset.Dataset
	var err error
	cfg := dataset.DefaultCSVConfig()
	cfg.Name = "ratings"

	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		ds, err = dataset.LoadRatingsCSV(f, cfg)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg.MinInteractions = 8
		ds, err = dataset.LoadRatingsCSV(strings.NewReader(syntheticRatings()), cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("loaded %q: %d users over a %d-item table\n", ds.Name, len(ds.Users), ds.NumItems)
	var hist int
	for _, u := range ds.Users {
		hist += len(u.Hist)
	}
	fmt.Printf("mean behavioural history: %.1f items/user\n\n", float64(hist)/float64(len(ds.Users)))

	tr, err := fl.New(fl.Config{
		Dataset: ds, Dim: 8, Hidden: 16, UsePrivate: true,
		Epsilon: 1.0, ClientsPerRound: 20, LocalLR: 0.1, LocalEpochs: 2, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tr.Run(120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("120 FL rounds at eps=1: AUC %.4f, reduced accesses %.1f%%, dummy %.1f%%, lost %.1f%%\n",
		res.AUC, 100*res.ReducedAccesses, 100*res.DummyFrac, 100*res.LostFrac)
	fmt.Printf("per-value adversary bound: %.4f (coin flip = 0.5)\n", res.AdversaryBound)
}

// syntheticRatings fabricates a plausible ratings.csv: 200 users, 300
// movies, taste-clustered positives so there is something to learn.
func syntheticRatings() string {
	rng := rand.New(rand.NewSource(7))
	var b strings.Builder
	b.WriteString("userId,movieId,rating,timestamp\n")
	for u := 1; u <= 200; u++ {
		taste := rng.Intn(3) // three genres, movies [g*100, g*100+99]
		n := 20 + rng.Intn(20)
		for i := 0; i < n; i++ {
			var movie int
			var rating float64
			if rng.Float64() < 0.8 {
				movie = taste*100 + rng.Intn(100)
				rating = 3.5 + 1.5*rng.Float64() // in-taste: positive
			} else {
				movie = rng.Intn(300)
				rating = 1.0 + 2.5*rng.Float64() // off-taste: negative
			}
			fmt.Fprintf(&b, "%d,%d,%.1f,%d\n", u, movie, rating, 1000+i)
		}
	}
	return b.String()
}
