// HTTP client walkthrough: starts an in-process FEDORA server (the same
// handler cmd/fedora-server exposes), then plays the orchestrator and
// two clients over the wire — the networked version of the quickstart.
//
//	go run ./examples/httpclient
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/api"
	"repro/internal/fedora"
)

func main() {
	ctrl, err := fedora.New(fedora.Config{
		NumRows: 100_000, Dim: 8, Epsilon: 1.0,
		MaxClientsPerRound: 8, MaxFeaturesPerClient: 8,
		LearningRate: 0.5, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(api.NewServer(ctrl).Handler())
	defer srv.Close()
	c := api.NewClient(srv.URL)

	status, err := c.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server up: backend=%s main ORAM %.1f MB\n\n",
		status.Backend, float64(status.MainORAMBytes)/1e6)

	// Orchestrator opens a round for two clients.
	alice := []uint64{7, 21, 1000}
	bob := []uint64{7, 99}
	if err := c.BeginRound([][]uint64{alice, bob}); err != nil {
		log.Fatal(err)
	}

	// Each client downloads its rows and uploads a unit gradient.
	for who, rows := range map[string][]uint64{"alice": alice, "bob": bob} {
		for _, row := range rows {
			entry, ok, err := c.Entry(row)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				fmt.Printf("%s: row %d lost to the mechanism\n", who, row)
				continue
			}
			grad := make([]float32, len(entry))
			for i := range grad {
				grad[i] = 1
			}
			if _, err := c.SubmitGradient(row, grad, 1); err != nil {
				log.Fatal(err)
			}
		}
	}

	stats, err := c.FinishRound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round done: K=%d unique=%d oram-accesses=%d dummy=%d lost=%d overhead=%s\n",
		stats.K, stats.KUnion, stats.KSampled, stats.Dummy, stats.Lost, stats.TotalOverhead)
}
