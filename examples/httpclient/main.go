// HTTP client walkthrough: starts an in-process FEDORA server (the same
// handler cmd/fedora-server exposes), then plays the orchestrator and
// two clients over the wire with the internal/client SDK — the
// networked version of the quickstart, on the batched v2 protocol.
//
//	go run ./examples/httpclient
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/fedora"
)

func main() {
	ctrl, err := fedora.New(fedora.Config{
		NumRows: 100_000, Dim: 8, Epsilon: 1.0,
		MaxClientsPerRound: 8, MaxFeaturesPerClient: 8,
		LearningRate: 0.5, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(api.NewServer(ctrl).Handler())
	defer srv.Close()

	// The SDK retries transient faults with capped exponential backoff
	// and splits large row sets into BatchSize-row HTTP transfers.
	c, err := client.New(client.Config{
		BaseURL:    srv.URL,
		Timeout:    10 * time.Second,
		MaxRetries: 4,
		BatchSize:  64,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	status, err := c.Status(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server up: backend=%s main ORAM %.1f MB\n\n",
		status.Backend, float64(status.MainORAMBytes)/1e6)

	// Orchestrator opens a round for two clients. BeginRound attaches an
	// idempotency key, so a retried begin never double-opens the round.
	alice := []uint64{7, 21, 1000}
	bob := []uint64{7, 99}
	info, err := c.BeginRound(ctx, [][]uint64{alice, bob})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round %s open (controller round %d)\n", info.RoundID, info.Round)

	// Each client downloads all its rows in one batched request and
	// uploads its gradients in one batch (with a dedup batch id).
	for who, rows := range map[string][]uint64{"alice": alice, "bob": bob} {
		entries, err := c.Entries(ctx, info.RoundID, rows)
		if err != nil {
			log.Fatal(err)
		}
		var grads []api.GradientRequest
		for _, e := range entries {
			if !e.OK {
				fmt.Printf("%s: row %d lost to the mechanism\n", who, e.Row)
				continue
			}
			grad := make([]float32, len(e.Entry))
			for i := range grad {
				grad[i] = 1
			}
			grads = append(grads, api.GradientRequest{Row: e.Row, Grad: grad, Samples: 1})
		}
		if _, err := c.SubmitGradients(ctx, info.RoundID, grads); err != nil {
			log.Fatal(err)
		}
	}

	done, err := c.FinishRound(ctx, info.RoundID)
	if err != nil {
		log.Fatal(err)
	}
	st := done.Stats
	fmt.Printf("round done: K=%d unique=%d oram-accesses=%d dummy=%d lost=%d overhead=%s\n",
		st.K, st.KUnion, st.KSampled, st.Dummy, st.Lost, st.TotalOverhead)
	hs := c.Stats()
	fmt.Printf("http: %d requests, %d retries, %d failures\n", hs.Requests, hs.Retries, hs.Failures)
}
