// Quickstart: stand up a FEDORA controller, run a few federated rounds
// by hand, and watch the ε-FDP mechanism and the ORAMs at work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/fedora"
)

func main() {
	// A small embedding table: 100K rows of 16 floats (64 B), protected
	// by FEDORA's SSD-resident RAW ORAM at ε = 1.
	ctrl, err := fedora.New(fedora.Config{
		NumRows:              100_000,
		Dim:                  16,
		Epsilon:              1.0,
		MaxClientsPerRound:   8,
		MaxFeaturesPerClient: 8,
		LearningRate:         0.5,
		Seed:                 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("main ORAM: %.1f MB on SSD; buffer structures: %.1f MB DRAM\n\n",
		float64(ctrl.MainORAMBytes())/1e6, float64(ctrl.DRAMResidentBytes())/1e6)

	for round := 1; round <= 3; round++ {
		// Two clients ask for overlapping embedding rows (row 7 twice).
		requests := [][]uint64{
			{7, 21, 1000},
			{7, 99, 54321},
		}
		r, err := ctrl.BeginRound(requests)
		if err != nil {
			log.Fatal(err)
		}

		// Clients download their rows and "train": here each submits a
		// constant gradient of ones over one local sample.
		for _, rows := range requests {
			for _, row := range rows {
				entry, ok, err := r.ServeEntry(row)
				if err != nil {
					log.Fatal(err)
				}
				if !ok {
					fmt.Printf("  row %d lost to the mechanism this round\n", row)
					continue
				}
				grad := make([]float32, len(entry))
				for i := range grad {
					grad[i] = 1
				}
				if _, err := r.SubmitGradient(row, grad, 1); err != nil {
					log.Fatal(err)
				}
			}
		}

		st, err := r.Finish()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: K=%d unique=%d oram-accesses=%d dummy=%d lost=%d  time=%v\n",
			round, st.K, st.KUnion, st.KSampled, st.Dummy, st.Lost, st.Total().Round(1e3))
	}

	// Row 7 received gradient 1 from two clients each round (FedAvg mean
	// = 1), at learning rate 0.5 → it should be ≈ −0.5 × rounds by now.
	row7, err := ctrl.PeekRow(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrow 7 after 3 rounds: %.2f (started at 0.00)\n", row7[0])
	fmt.Printf("SSD wrote %.1f MB total — AO reads are write-free thanks to the VTree\n",
		float64(ctrl.SSDDevice().Stats().BytesWritten)/1e6)
}
