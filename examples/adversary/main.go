// Adversary walkthrough: what does ε actually buy? This example mounts
// the strongest possible attack on the ε-FDP mechanism — the
// Bayes-optimal likelihood-ratio test distinguishing two neighbouring
// inputs from the published access count k — and compares its measured
// success rate with the theoretical bound e^ε/(1+e^ε) (paper Sec 3.1).
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/fdp"
)

func main() {
	const K, kUnion, trials = 100, 30, 100000
	fmt.Printf("Distinguishing k_union=%d from k_union=%d over %d trials each\n\n",
		kUnion, kUnion+1, trials)
	fmt.Printf("%-8s %-22s %-22s %s\n", "eps", "adversary success", "theoretical bound", "interpretation")

	for _, eps := range []float64{0.01, 0.1, 0.5, 1, 2, 5} {
		m := fdp.Mechanism{Epsilon: eps}
		p0, err := m.Distribution(K, kUnion)
		if err != nil {
			log.Fatal(err)
		}
		p1, err := m.Distribution(K, kUnion+1)
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(eps*1e6) + 1))
		wins := 0
		for i := 0; i < trials; i++ {
			world := rng.Intn(2)
			var k int
			if world == 0 {
				k, err = m.Sample(K, kUnion, rng)
			} else {
				k, err = m.Sample(K, kUnion+1, rng)
			}
			if err != nil {
				log.Fatal(err)
			}
			guess := 0
			if p1[k-1] > p0[k-1] {
				guess = 1
			}
			if guess == world {
				wins++
			}
		}
		got := float64(wins) / trials
		bound := fdp.AdversarySuccessBound(eps)
		verdict := "≈ coin flip"
		switch {
		case bound > 0.9:
			verdict = "effectively leaked"
		case bound > 0.7:
			verdict = "meaningful leakage"
		case bound > 0.55:
			verdict = "mild leakage"
		}
		fmt.Printf("%-8.2f %-22.4f %-22.4f %s\n", eps, got, bound, verdict)
	}

	fmt.Println("\nGroup privacy: hiding n=100 feature values at total eps=1 runs the")
	fmt.Printf("mechanism at eps/n = %.4f per value — adversary bound %.4f per value.\n",
		fdp.GroupEpsilon(1, 100), fdp.AdversarySuccessBound(fdp.GroupEpsilon(1, 100)))
	cum := fdp.SequentialComposition(0.1, 500)
	adv, err := fdp.AdvancedComposition(0.1, 500, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Across 500 rounds at eps=0.1/round: basic composition %.0f, advanced %.1f (delta=1e-6)\n",
		cum, adv)
	fmt.Println("— advanced composition wins when per-round eps is small and rounds are many.")
}
