// MovieLens-like FL accuracy walkthrough: trains the DLRM-style model
// federatedly through FEDORA at three privacy levels and shows that
// (a) private behavioural-history features matter and (b) ε-FDP noise
// costs almost nothing — the paper's Table 1 story in miniature.
//
//	go run ./examples/movielens
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/fdp"
	"repro/internal/fl"
)

func main() {
	cfg := dataset.MovieLensConfig()
	cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 400, 150, 40
	ds := dataset.Generate(cfg)
	fmt.Printf("dataset: %d items, %d users (mean history %.1f movies)\n\n",
		ds.NumItems, len(ds.Users), meanHist(ds))

	type run struct {
		label      string
		usePrivate bool
		eps        float64
	}
	runs := []run{
		{"pub (no private features)", false, fdp.EpsilonInfinity},
		{"private, eps=inf (no FDP)", true, fdp.EpsilonInfinity},
		{"private, eps=1.0", true, 1.0},
		{"private, eps=0.1", true, 0.1},
	}
	for _, r := range runs {
		tr, err := fl.New(fl.Config{
			Dataset: ds, Dim: 8, Hidden: 16,
			UsePrivate: r.usePrivate, Epsilon: r.eps,
			ClientsPerRound: 40, LocalEpochs: 2, LocalLR: 0.1,
			Dropout: 0.5, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := tr.Run(80)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s AUC %.4f  reduced %.1f%%  dummy %.1f%%  lost %.1f%%\n",
			r.label, res.AUC, 100*res.ReducedAccesses, 100*res.DummyFrac, 100*res.LostFrac)
	}
	fmt.Println("\nExpected shape: pub well below the private runs; eps=0.1 ≈ eps=1 ≈ eps=inf.")
}

func meanHist(ds *dataset.Dataset) float64 {
	var sum int
	for _, u := range ds.Users {
		sum += len(u.Hist)
	}
	return float64(sum) / float64(len(ds.Users))
}
