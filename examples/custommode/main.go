// Custom FL operation modes: FEDORA's buffer ORAM exposes programmable
// pre-/post-aggregation hooks (paper Sec 4.3, Eq. 4). This example runs
// the same round under FedAvg, FedAdam, EANA (clip + DP noise) and
// LazyDP (staleness-scaled noise) and contrasts the resulting updates.
//
//	go run ./examples/custommode
package main

import (
	"fmt"
	"log"

	"repro/internal/bufferoram"
	"repro/internal/fdp"
	"repro/internal/fedora"
)

func main() {
	aggs := []bufferoram.Aggregator{
		bufferoram.FedAvg{},
		bufferoram.NewFedAdam(),
		bufferoram.EANA{Clip: 1, Sigma: 0.05},
		bufferoram.LazyDP{Clip: 1, Sigma: 0.05},
	}
	for _, agg := range aggs {
		ctrl, err := fedora.New(fedora.Config{
			NumRows: 10_000, Dim: 4,
			Epsilon:              fdp.EpsilonInfinity,
			Aggregator:           agg,
			LearningRate:         1,
			MaxClientsPerRound:   4,
			MaxFeaturesPerClient: 4,
			Seed:                 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Two clients train row 42: one has 3 samples with gradient +1,
		// the other 1 sample with gradient +5 (an outlier EANA clips).
		r, err := ctrl.BeginRound([][]uint64{{42}, {42}})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := r.SubmitGradient(42, []float32{1, 1, 1, 1}, 3); err != nil {
			log.Fatal(err)
		}
		if _, err := r.SubmitGradient(42, []float32{5, 5, 5, 5}, 1); err != nil {
			log.Fatal(err)
		}
		if _, err := r.Finish(); err != nil {
			log.Fatal(err)
		}
		row, err := ctrl.PeekRow(42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s row[0] after one round: %+.4f\n", agg.Name(), row[0])
	}
	fmt.Println(`
FedAvg applies the weighted mean −(3·1+1·5)/4 = −2. FedAdam normalizes
the step to ≈ −1 (its per-coordinate unit step). EANA clips the outlier
gradient to unit norm before averaging and adds Gaussian noise. LazyDP
matches EANA here (staleness r = 1) but its noise grows for rows that
go untouched across rounds.`)
}
