// Multi-table walkthrough: production recommendation models embed many
// sparse features, each with its own table (the paper's Criteo model has
// 26). FEDORA protects them all behind ONE main ORAM: the tables share a
// flat row space, so accesses to different tables are mutually
// indistinguishable too.
//
//	go run ./examples/multitable
package main

import (
	"fmt"
	"log"

	"repro/internal/fdp"
	"repro/internal/fedora"
)

func main() {
	mc, err := fedora.NewMulti(fedora.Config{
		Dim:                  8,
		Epsilon:              fdp.EpsilonInfinity,
		MaxClientsPerRound:   8,
		MaxFeaturesPerClient: 8,
		LearningRate:         1,
		Seed:                 5,
	}, []fedora.TableSpec{
		{Name: "items", Rows: 1_000_000},
		{Name: "categories", Rows: 10_000},
		{Name: "brands", Rows: 50_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 tables → one %d-row ORAM (%.1f MB on SSD)\n\n",
		mc.Layout.TotalRows(), float64(mc.MainORAMBytes())/1e6)

	// A client's sample touches one row per table.
	reqs, err := mc.FlattenRequests([][]fedora.TableRequest{
		{{Table: 0, Row: 42}, {Table: 1, Row: 7}, {Table: 2, Row: 1234}},
	})
	if err != nil {
		log.Fatal(err)
	}
	r, err := mc.BeginRound(reqs)
	if err != nil {
		log.Fatal(err)
	}
	grad := []float32{1, 1, 1, 1, 1, 1, 1, 1}
	for _, row := range reqs[0] {
		if _, _, err := r.ServeEntry(row); err != nil {
			log.Fatal(err)
		}
		if _, err := r.SubmitGradient(row, grad, 1); err != nil {
			log.Fatal(err)
		}
	}
	st, err := r.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round: K=%d unique=%d accesses=%d — the ORAM cannot tell\n",
		st.K, st.KUnion, st.KSampled)
	fmt.Println("which table each access belonged to, let alone which row.")

	for _, probe := range []struct {
		table string
		row   uint64
	}{{"items", 42}, {"categories", 7}, {"brands", 1234}} {
		v, err := mc.PeekTableRow(probe.table, probe.row)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s[%d] → %.1f (updated)\n", probe.table, probe.row, v[0])
	}
}
