// SSD lifetime and latency comparison: runs the paper's Small-table
// workload through all three designs and prints the Fig 7/8 story —
// Path ORAM+ chews through the SSD while FEDORA's write-free AO accesses
// and rare evictions keep it alive for years.
//
//	go run ./examples/ssdlifetime
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	scale := dataset.Scales[0] // Small: 10M rows × 64 B
	workload, _ := dataset.WorkloadByKey("taobao-val")
	fmt.Printf("table: %s (%d rows × %d B), workload: %s\n\n",
		scale.Name, scale.Rows, scale.EntryBytes, workload.Name)

	for _, updates := range []int{10_000, 100_000} {
		fmt.Printf("%d updates per round:\n", updates)
		for _, sys := range []experiments.System{
			experiments.SysPathORAMPlus,
			experiments.SysFedoraEps0,
			experiments.SysFedoraEps1,
		} {
			res, err := experiments.RunPerf(experiments.PerfConfig{
				Scale: scale, Updates: updates, System: sys,
				Workload: workload, Rounds: 2, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s lifetime %8.1f months   wear %6.1f MB/round   overhead %8v (%.1f%%)\n",
				sys.Name, res.LifetimeMonths(),
				float64(res.SSDWrittenPerRound)/1e6,
				res.Overhead.Round(1e6), res.OverheadPct())
		}
		fmt.Println()
	}
	fmt.Println("FEDORA(e=1) additionally skips duplicate requests, which is where")
	fmt.Println("the extra lifetime over e=0 comes from (Table 1's reduced accesses).")
}
