// Command fedora-coordinator serves ONE FEDORA row-space across many
// fedora-server member processes: it owns the shard placement map,
// fans each FL round out to the members over the batched v2 API, and
// presents the exact same v2 API surface itself — a remote fedora-train
// pointed at the coordinator reproduces the single-process model bit
// for bit at any node count.
//
// Members are fedora-server processes started in member mode over the
// SAME global configuration:
//
//	fedora-server -listen :8081 -rows 100000 -dim 16 -shards 2 -member-first 0 -member-count 1
//	fedora-server -listen :8082 -rows 100000 -dim 16 -shards 2 -member-first 1 -member-count 1
//	fedora-coordinator -listen :8080 -rows 100000 -dim 16 -shards 2 \
//	    -members "http://localhost:8081=0:1,http://localhost:8082=1:1"
//
// A member that stops answering is FENCED: its rows serve as
// unavailable (rounds degrade, exactly like shard quarantine) until it
// recovers. With -checkpoint-dir the coordinator assembles cluster-wide
// checkpoints (byte-identical to single-process sharded checkpoints)
// and migrates shards from the newest one onto a replacement node that
// registers via POST /cluster/join. Placement and per-node health are
// served on GET /cluster/status (or `fedora-client cluster`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/fedora"
	"repro/internal/fl"
	"repro/internal/persist"
	"repro/internal/wire"
)

// ctrlSection names the controller snapshot inside checkpoint files,
// shared with fedora-server so checkpoints are portable between a
// coordinator and a single process.
const ctrlSection = cluster.CheckpointSection

func main() {
	var (
		listen   = flag.String("listen", ":8080", "listen address")
		members  = flag.String("members", "", `placement map: comma-separated "url=first:count" entries tiling shards [0,-shards) in order (required)`)
		rows     = flag.Uint64("rows", 1_000_000, "embedding-table height (GLOBAL)")
		dim      = flag.Int("dim", 16, "embedding dimension (floats)")
		eps      = flag.Float64("eps", 1.0, "epsilon (0 = perfect FDP)")
		clients  = flag.Int("max-clients", 100, "max clients per round")
		features = flag.Int("max-features", 100, "max features per client")
		lr       = flag.Float64("lr", 1.0, "server learning rate")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		shards   = flag.Int("shards", 1, "GLOBAL shard count the members partition")

		flDataset = flag.String("fl-dataset", "", "configure for the FL study instead of raw -rows/-dim: movielens | taobao (pairs with fedora-train -remote)")
		flMode    = flag.String("fl-mode", "hide-val", "privacy mode with -fl-dataset: pub | hide-val | hide-num")
		flQuick   = flag.Bool("fl-quick", false, "trimmed dataset with -fl-dataset")

		probeEvery    = flag.Duration("probe-every", 5*time.Second, "background member health-probe period")
		memberTimeout = flag.Duration("member-timeout", 30*time.Second, "per-attempt timeout on member calls")
		memberRetries = flag.Int("member-retries", 2, "retries per member call before the node is fenced")

		ckptDir   = flag.String("checkpoint-dir", "", "durable state directory: round WAL, cluster checkpoints, coordinator epoch; feeds crash recovery, join-time shard migration and standby failover")
		ckptEvery = flag.Int("checkpoint-every", 0, "with -checkpoint-dir: checkpoint every N healthy rounds, auto-migrate after degraded rounds, and reset the round WAL (0 = every round)")

		standby       = flag.Bool("standby", false, "start as a hot standby: tail -peer and promote after -lease of missed heartbeats (requires -peer and -checkpoint-dir)")
		peerURL       = flag.String("peer", "", "the other coordinator instance's URL (the primary to tail when -standby, the standby to hint at otherwise)")
		selfURL       = flag.String("self", "", "this instance's advertised URL (served as leader_hint and on /cluster/leader)")
		beatEvery     = flag.Duration("heartbeat-every", 500*time.Millisecond, "standby heartbeat period against -peer")
		lease         = flag.Duration("lease", 2*time.Second, "missed-heartbeat budget before a standby promotes itself")
		roundDeadline = flag.Duration("round-deadline", 0, "finish rounds with partial gradients after this long (0 = no deadline)")
		maxInflight   = flag.Int("max-inflight", 0, "bound concurrent round operations; excess requests are shed with 503 + Retry-After (0 = unbounded)")
		uploadCodec   = flag.String("upload-codec", "", "upload-plane policy: require this wire codec on gradient uploads (plaintext | masked | masked-sparse | subspace); a masked policy also rejects plain JSON gradients (\"\" = accept anything)")
		drain         = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain limit")
	)
	flag.Parse()

	nodes, err := parseMembers(*members)
	if err != nil {
		log.Fatal(err)
	}

	var fc fedora.Config
	if *flDataset != "" {
		flCfg, cfgErr := fl.SingleConfig(*flDataset, *eps, *flMode, *flQuick, *seed, 0, *shards)
		if cfgErr != nil {
			log.Fatal(cfgErr)
		}
		fc, err = fl.ControllerConfig(flCfg)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fc = fedora.Config{
			NumRows:              *rows,
			Dim:                  *dim,
			Epsilon:              *eps,
			MaxClientsPerRound:   *clients,
			MaxFeaturesPerClient: *features,
			LearningRate:         float32(*lr),
			Seed:                 *seed,
			Shards:               *shards,
		}
	}

	ccfg := cluster.Config{
		Fedora: fc,
		Nodes:  nodes,
		Client: client.Config{
			Timeout:    *memberTimeout,
			MaxRetries: *memberRetries,
		},
		ProbeInterval: *probeEvery,
	}

	if *standby && (*peerURL == "" || *ckptDir == "") {
		log.Fatal("fedora-coordinator: -standby requires -peer and -checkpoint-dir")
	}

	var mgr *persist.Manager
	if *ckptDir != "" {
		if mgr, err = persist.OpenManager(*ckptDir); err != nil {
			log.Fatal(err)
		}
		ccfg.Checkpoint = func() ([]byte, error) { return latestBlob(mgr) }
		ccfg.Manager = mgr
		ccfg.CheckpointEvery = *ckptEvery
	}

	co, err := cluster.New(ccfg)
	if err != nil {
		log.Fatal(err)
	}

	// With a durable directory the HA state machine owns startup: a
	// primary claims the next coordinator epoch, fences the members with
	// it, restores the newest checkpoint and replays the round WAL before
	// serving; a standby tails -peer and does all of that only when it
	// promotes. Without one, this is the original best-effort coordinator.
	var ha *cluster.HA
	if mgr != nil {
		ha, err = cluster.NewHA(cluster.HAConfig{
			Coordinator:    co,
			SelfURL:        *selfURL,
			PeerURL:        *peerURL,
			Standby:        *standby,
			HeartbeatEvery: *beatEvery,
			Lease:          *lease,
			Client: client.Config{
				Timeout: *memberTimeout,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := ha.Start(); err != nil {
			log.Fatal(err)
		}
		if *standby {
			fmt.Printf("fedora-coordinator: standby tailing %s (lease %s)\n", *peerURL, *lease)
		} else {
			fmt.Printf("fedora-coordinator: primary at coordinator epoch %d (round %d)\n", co.Epoch(), co.Round())
		}
	} else {
		co.StartProbes()
	}
	defer co.StopProbes()

	fmt.Printf("fedora-coordinator: N=%d dim=%d eps=%g shards=%d over %d node(s)\n",
		co.NumRows(), fc.Dim, fc.Epsilon, co.Shards(), len(nodes))
	for _, n := range nodes {
		fmt.Printf("fedora-coordinator: shards [%d,%d) -> %s\n", n.First, n.First+n.Count, n.URL)
	}
	fmt.Printf("listening on %s\n", *listen)

	var opts []api.Option
	if *roundDeadline > 0 {
		opts = append(opts, api.WithDefaultDeadline(*roundDeadline))
	}
	if *maxInflight > 0 {
		opts = append(opts, api.WithMaxInFlight(*maxInflight))
	}
	if *uploadCodec != "" {
		codec, err := wire.ParseCodec(*uploadCodec)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, api.WithUploadCodec(codec))
		fmt.Printf("fedora-coordinator: upload-plane policy: %s\n", codec)
	}
	if *ckptEvery > 0 && mgr == nil {
		log.Fatal("fedora-coordinator: -checkpoint-every requires -checkpoint-dir")
	}
	// Checkpoint cadence and degraded-round migration run inside the
	// coordinator itself (Config.Manager) rather than api.WithAutoRecover:
	// the cluster layer must pair every checkpoint with a WAL reset, and
	// two independent writers would collide on checkpoint epochs.
	mux := http.NewServeMux()
	co.RegisterRoutes(mux)
	mux.Handle("/", api.NewServerFor(co, opts...).Handler())
	var handler http.Handler = mux
	if ha != nil {
		handler = ha.Handler(mux)
	}
	srv := &http.Server{Addr: *listen, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-sigCh:
		fmt.Printf("fedora-coordinator: %v — draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("fedora-coordinator: drain: %v", err)
	}
	if mgr != nil && (ha == nil || ha.Role() == "primary") {
		epoch, err := saveCluster(mgr, co)
		switch {
		case errors.Is(err, fedora.ErrRoundOpen):
			log.Printf("fedora-coordinator: shutdown checkpoint skipped: %v", err)
		case err != nil:
			// Members may already be gone at shutdown; the previous epoch
			// stays authoritative.
			log.Printf("fedora-coordinator: shutdown checkpoint: %v", err)
		default:
			fmt.Printf("fedora-coordinator: checkpointed epoch %d to %s\n", epoch, mgr.Dir())
		}
	}
}

// parseMembers parses the "url=first:count,..." placement flag.
func parseMembers(s string) ([]cluster.NodeSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("fedora-coordinator: -members is required")
	}
	var nodes []cluster.NodeSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		url, place, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("fedora-coordinator: member %q: want url=first:count", entry)
		}
		firstStr, countStr, ok := strings.Cut(place, ":")
		if !ok {
			return nil, fmt.Errorf("fedora-coordinator: member %q: want url=first:count", entry)
		}
		first, err := strconv.Atoi(firstStr)
		if err != nil {
			return nil, fmt.Errorf("fedora-coordinator: member %q: first shard: %w", entry, err)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil {
			return nil, fmt.Errorf("fedora-coordinator: member %q: shard count: %w", entry, err)
		}
		nodes = append(nodes, cluster.NodeSpec{URL: url, First: first, Count: count})
	}
	return nodes, nil
}

// latestBlob returns the newest checkpoint's controller section for
// join-time shard migration.
func latestBlob(mgr *persist.Manager) ([]byte, error) {
	cp, skipped, err := mgr.LoadLatest()
	if err != nil {
		return nil, err
	}
	for _, skip := range skipped {
		log.Printf("fedora-coordinator: skipped corrupt checkpoint: %v", skip)
	}
	blob, ok := cp.Get(ctrlSection)
	if !ok {
		return nil, fmt.Errorf("checkpoint epoch %d has no %q section", cp.Epoch, ctrlSection)
	}
	return blob, nil
}

// saveCluster assembles and persists a cluster-wide checkpoint.
func saveCluster(mgr *persist.Manager, co *cluster.Coordinator) (uint64, error) {
	blob, err := co.Snapshot()
	if err != nil {
		return 0, err
	}
	cp := persist.NewCheckpoint()
	cp.Put(ctrlSection, blob)
	epochs, err := mgr.Epochs()
	if err != nil {
		return 0, err
	}
	var epoch uint64 = 1
	if len(epochs) > 0 {
		epoch = epochs[len(epochs)-1] + 1
	}
	if err := mgr.Save(epoch, cp); err != nil {
		return 0, err
	}
	return epoch, mgr.Prune(3)
}
