// Command fedora-train runs the FL accuracy study (Table 1): federated
// training of a DLRM-style model through the FEDORA controller on the
// synthetic MovieLens-like and Taobao-like datasets, reporting reduced
// accesses, dummy/lost fractions, and ROC-AUC per (mode, ε) cell.
//
//	fedora-train -table1          the full Table 1 sweep
//	fedora-train -table1 -quick   trimmed datasets + fewer rounds
//	fedora-train -single -dataset movielens -eps 1.0 -mode hide-val
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fdp"
	"repro/internal/fl"
	"repro/internal/metrics"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "run the full Table 1 accuracy study")
		pooling = flag.Bool("ablation-pooling", false, "mean vs attention pooling ablation")
		single  = flag.Bool("single", false, "run one configuration")
		dsName  = flag.String("dataset", "movielens", "dataset for -single: movielens | taobao")
		epsStr  = flag.Float64("eps", math.Inf(1), "epsilon for -single (+Inf = no FDP)")
		mode    = flag.String("mode", "hide-val", "mode for -single: pub | hide-val | hide-num")
		rounds  = flag.Int("rounds", 0, "FL rounds (0 = default per study)")
		quick   = flag.Bool("quick", false, "trimmed datasets and round counts")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		csvOut  = flag.String("csv", "", "also write Table 1 to this CSV file")
		workers = flag.Int("workers", 0, "client-training worker pool size (0 = GOMAXPROCS); results are seed-deterministic at any value")
		shards  = flag.Int("shards", 1, "partition the embedding table across this many parallel per-shard ORAMs (1 = monolithic); results are seed-deterministic at any value")

		ckptDir   = flag.String("checkpoint-dir", "", "durable checkpoint directory for -single (enables crash recovery)")
		ckptEvery = flag.Int("checkpoint-every", 10, "checkpoint period in rounds (with -checkpoint-dir)")
		resume    = flag.Bool("resume", false, "resume -single from -checkpoint-dir (restores the newest valid checkpoint and replays the round WAL)")
	)
	flag.Parse()

	switch {
	case *table1:
		rows, err := experiments.RunTable1(experiments.Table1Options{
			Quick: *quick, Rounds: *rounds, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedora-train:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderTable1(rows))
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fedora-train:", err)
				os.Exit(1)
			}
			if err := experiments.WriteTable1CSV(f, rows); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "fedora-train:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fedora-train:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *csvOut)
		}
	case *pooling:
		rows, err := experiments.RunPoolingAblation(experiments.SweepOptions{Quick: *quick, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedora-train:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderPoolingAblation(rows))
	case *single:
		runSingle(*dsName, *epsStr, *mode, *rounds, *quick, *seed, *workers, *shards, *ckptDir, *ckptEvery, *resume)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runSingle(dsName string, eps float64, mode string, rounds int, quick bool, seed int64, workers, shards int, ckptDir string, ckptEvery int, resume bool) {
	var cfg dataset.Config
	switch dsName {
	case "movielens":
		cfg = dataset.MovieLensConfig()
	case "taobao":
		cfg = dataset.TaobaoConfig()
	default:
		fmt.Fprintf(os.Stderr, "fedora-train: unknown dataset %q\n", dsName)
		os.Exit(2)
	}
	if quick {
		cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 400, 150, 40
	}
	ds := dataset.Generate(cfg)

	flCfg := fl.Config{
		Dataset: ds, Dim: 8, Hidden: 16,
		ClientsPerRound: 40, MaxFeaturesPerClient: 100,
		LocalLR: 0.1, LocalEpochs: 2, Seed: seed,
		Workers: workers, Shards: shards,
	}
	switch mode {
	case "pub":
		flCfg.Epsilon = fdp.EpsilonInfinity
	case "hide-val":
		flCfg.UsePrivate = true
		flCfg.Epsilon = eps
	case "hide-num":
		flCfg.UsePrivate = true
		flCfg.Epsilon = eps
		flCfg.HideCount = true
	default:
		fmt.Fprintf(os.Stderr, "fedora-train: unknown mode %q\n", mode)
		os.Exit(2)
	}
	if dsName == "movielens" {
		flCfg.Dropout = 0.5
	}
	tr, err := fl.New(flCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedora-train:", err)
		os.Exit(1)
	}
	if rounds == 0 {
		rounds = 100
		if quick {
			rounds = 40
		}
	}
	if resume && ckptDir == "" {
		fmt.Fprintln(os.Stderr, "fedora-train: -resume requires -checkpoint-dir")
		os.Exit(1)
	}
	var res fl.Result
	if ckptDir != "" {
		// Durable mode: periodic checkpoints + round WAL; -resume picks up
		// a crashed or interrupted run exactly where it left off.
		runner, rerr := fl.NewRunner(tr, ckptDir, ckptEvery)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "fedora-train:", rerr)
			os.Exit(1)
		}
		defer runner.Close()
		if resume {
			rep, rerr := runner.Resume()
			if rerr != nil {
				fmt.Fprintln(os.Stderr, "fedora-train: resume:", rerr)
				os.Exit(1)
			}
			for _, skip := range rep.Skipped {
				fmt.Fprintln(os.Stderr, "fedora-train: resume: skipped corrupt checkpoint:", skip)
			}
			fmt.Printf("resumed from epoch %d (round %d), replayed %d WAL round(s)\n",
				rep.RestoredEpoch, rep.RestoredRound, rep.ReplayedRounds)
		}
		res, err = runner.Run(rounds)
		if err == nil {
			_, err = runner.Checkpoint() // final snapshot for clean restart
		}
	} else {
		res, err = tr.Run(rounds)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedora-train:", err)
		os.Exit(1)
	}
	fmt.Printf("dataset=%s mode=%s eps=%g rounds=%d workers=%d shards=%d\n",
		dsName, mode, eps, rounds, res.Workers, tr.Controller().Shards())
	fmt.Printf("AUC:              %.4f\n", res.AUC)
	fmt.Printf("reduced accesses: %.2f%%\n", 100*res.ReducedAccesses)
	fmt.Printf("dummy accesses:   %.2f%% of optimum\n", 100*res.DummyFrac)
	fmt.Printf("lost accesses:    %.2f%% of optimum\n", 100*res.LostFrac)
	fmt.Printf("wall time:        %v\n", res.Elapsed.Round(1e6))
	fmt.Printf("phase breakdown (wall clock, %d rounds):\n", res.Rounds)
	fmt.Print(indent(metrics.RenderPhases([]metrics.Phase{
		{Name: "select", D: res.Phases.Select},
		{Name: "union", D: res.Phases.Union},
		{Name: "oram-read", D: res.Phases.ORAMRead},
		{Name: "train", D: res.Phases.Train},
		{Name: "aggregate", D: res.Phases.Aggregate},
	}), "  "))
}

// indent prefixes every non-empty line.
func indent(s, pre string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = pre + l
		}
	}
	return strings.Join(lines, "\n")
}
