// Command fedora-train runs the FL accuracy study (Table 1): federated
// training of a DLRM-style model through the FEDORA controller on the
// synthetic MovieLens-like and Taobao-like datasets, reporting reduced
// accesses, dummy/lost fractions, and ROC-AUC per (mode, ε) cell.
//
//	fedora-train -table1          the full Table 1 sweep
//	fedora-train -table1 -quick   trimmed datasets + fewer rounds
//	fedora-train -single -dataset movielens -eps 1.0 -mode hide-val
//
// With -remote the -single run drives a fedora-server over the v2 HTTP
// API (through the internal/client SDK) instead of an in-process
// controller; start the server with matching -fl-dataset/-fl-mode/
// -eps/-seed flags and the two deployments produce bit-identical
// models:
//
//	fedora-train -single -remote http://localhost:8080 -dataset movielens -mode hide-val -eps 1
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/storage"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "run the full Table 1 accuracy study")
		pooling  = flag.Bool("ablation-pooling", false, "mean vs attention pooling ablation")
		single   = flag.Bool("single", false, "run one configuration")
		dsName   = flag.String("dataset", "movielens", "dataset for -single: movielens | taobao")
		epsStr   = flag.Float64("eps", math.Inf(1), "epsilon for -single (+Inf = no FDP)")
		mode     = flag.String("mode", "hide-val", "mode for -single: pub | hide-val | hide-num")
		rounds   = flag.Int("rounds", 0, "FL rounds (0 = default per study)")
		quick    = flag.Bool("quick", false, "trimmed datasets and round counts")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		csvOut   = flag.String("csv", "", "also write Table 1 to this CSV file")
		workers  = flag.Int("workers", 0, "client-training worker pool size (0 = GOMAXPROCS); results are seed-deterministic at any value")
		shards   = flag.Int("shards", 1, "partition the embedding table across this many parallel per-shard ORAMs (1 = monolithic); results are seed-deterministic at any value")
		prefetch = flag.Bool("prefetch", false, "lookahead pipeline: stage round R+1 while R trains, streaming its ORAM reads on a background fetcher and deferring write-back; bit-identical to a sync run")

		uploadCodec = flag.String("upload-codec", "", "gradient upload codec: plaintext | masked | masked-sparse | subspace (\"\" = legacy float path); all wire codecs are bit-identical to each other")
		subspaceDim = flag.Int("subspace-dim", 0, "coordinates updated per row with -upload-codec=subspace (0 = dim/4)")

		ckptDir   = flag.String("checkpoint-dir", "", "durable checkpoint directory for -single (enables crash recovery)")
		ckptEvery = flag.Int("checkpoint-every", 10, "checkpoint period in rounds (with -checkpoint-dir)")
		resume    = flag.Bool("resume", false, "resume -single from -checkpoint-dir (restores the newest valid checkpoint and replays the round WAL)")

		remote        = flag.String("remote", "", "drive a fedora-server (or coordinator) at this base URL instead of an in-process controller (-single only); comma-separate several coordinator endpoints for failover across an HA pair")
		remoteBatch   = flag.Int("remote-batch", 64, "rows per batched HTTP transfer with -remote")
		remoteRetry   = flag.Int("remote-retries", 4, "max retries per request with -remote")
		remoteTimeout = flag.Duration("remote-timeout", 30*time.Second, "per-attempt HTTP timeout with -remote")

		faultPlan = flag.String("fault-plan", "", "JSON fault-plan file for -single: inject device faults into the in-process controller to reproduce chaos failures locally (see internal/fault)")

		storageKind   = flag.String("storage", "sim", "main-device storage backend for -single: sim (discrete-event simulator) | file (real page-aligned I/O against backing files); results are bit-identical either way")
		storageDir    = flag.String("storage-dir", "", "directory for -storage=file backing files (default: a fresh temp dir)")
		storageDirect = flag.Bool("storage-direct", false, "request O_DIRECT on -storage=file backing files (falls back to buffered I/O where unsupported, e.g. tmpfs)")
	)
	flag.Parse()

	switch {
	case *table1:
		rows, err := experiments.RunTable1(experiments.Table1Options{
			Quick: *quick, Rounds: *rounds, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedora-train:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderTable1(rows))
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fedora-train:", err)
				os.Exit(1)
			}
			if err := experiments.WriteTable1CSV(f, rows); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "fedora-train:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fedora-train:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *csvOut)
		}
	case *pooling:
		rows, err := experiments.RunPoolingAblation(experiments.SweepOptions{Quick: *quick, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedora-train:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderPoolingAblation(rows))
	case *single:
		runSingle(singleOptions{
			dsName: *dsName, eps: *epsStr, mode: *mode, rounds: *rounds,
			quick: *quick, seed: *seed, workers: *workers, shards: *shards,
			prefetch: *prefetch,
			ckptDir:  *ckptDir, ckptEvery: *ckptEvery, resume: *resume,
			remote: *remote, remoteBatch: *remoteBatch,
			remoteRetries: *remoteRetry, remoteTimeout: *remoteTimeout,
			uploadCodec: *uploadCodec, subspaceDim: *subspaceDim,
			faultPlan:   *faultPlan,
			storageKind: *storageKind, storageDir: *storageDir, storageDirect: *storageDirect,
		})
	default:
		flag.Usage()
		os.Exit(2)
	}
}

type singleOptions struct {
	dsName   string
	eps      float64
	mode     string
	rounds   int
	quick    bool
	seed     int64
	workers  int
	shards   int
	prefetch bool

	ckptDir   string
	ckptEvery int
	resume    bool

	remote        string
	remoteBatch   int
	remoteRetries int
	remoteTimeout time.Duration

	uploadCodec string
	subspaceDim int

	faultPlan string

	storageKind   string
	storageDir    string
	storageDirect bool
}

func runSingle(o singleOptions) {
	flCfg, err := fl.SingleConfig(o.dsName, o.eps, o.mode, o.quick, o.seed, o.workers, o.shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedora-train:", err)
		os.Exit(2)
	}
	spec, err := storage.ParseSpec(o.storageKind, o.storageDir, o.storageDirect)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedora-train:", err)
		os.Exit(2)
	}
	if o.remote != "" && spec.Kind != storage.KindSim {
		fmt.Fprintln(os.Stderr, "fedora-train: -storage selects the in-process controller's backend; with -remote, pass -storage to fedora-server instead")
		os.Exit(2)
	}
	flCfg.Storage = spec
	flCfg.UploadCodec = o.uploadCodec
	flCfg.SubspaceDim = o.subspaceDim
	flCfg.Prefetch = o.prefetch
	if spec.Kind == storage.KindFile {
		fmt.Printf("storage: file backend in %s (direct=%v)\n", spec.Dir, spec.Direct)
	}
	if o.faultPlan != "" {
		if o.remote != "" {
			fmt.Fprintln(os.Stderr, "fedora-train: -fault-plan wraps the in-process controller's devices; with -remote, pass it to fedora-server instead")
			os.Exit(2)
		}
		plan, err := fault.Load(o.faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedora-train:", err)
			os.Exit(2)
		}
		plan.ArmCrashPoints()
		flCfg.WrapDevice = plan.Wrap
		fmt.Printf("fault plan %s armed (%d rules, seed %d)\n", o.faultPlan, len(plan.Rules), plan.Seed)
	}

	var (
		tr  *fl.Trainer
		sdk *client.Client
	)
	if o.remote != "" {
		// Remote mode: the trainer keeps the whole deterministic FL loop
		// (selection, local SGD, merge order) and drives the server's
		// controller over the batched v2 API. Durability belongs to the
		// server process (fedora-server -checkpoint-dir), not the client.
		if o.ckptDir != "" || o.resume {
			fmt.Fprintln(os.Stderr, "fedora-train: -checkpoint-dir/-resume require an in-process controller; with -remote, run fedora-server -checkpoint-dir instead")
			os.Exit(2)
		}
		endpoints := strings.Split(o.remote, ",")
		for i := range endpoints {
			endpoints[i] = strings.TrimSpace(endpoints[i])
		}
		sdk, err = client.New(client.Config{
			Endpoints:  endpoints,
			Timeout:    o.remoteTimeout,
			MaxRetries: o.remoteRetries,
			BatchSize:  o.remoteBatch,
		})
		if err == nil {
			tr, err = client.NewRemoteTrainer(flCfg, sdk)
		}
	} else {
		tr, err = fl.New(flCfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedora-train:", err)
		os.Exit(1)
	}
	defer tr.Close()
	rounds := o.rounds
	if rounds == 0 {
		rounds = 100
		if o.quick {
			rounds = 40
		}
	}
	if o.resume && o.ckptDir == "" {
		fmt.Fprintln(os.Stderr, "fedora-train: -resume requires -checkpoint-dir")
		os.Exit(1)
	}
	var res fl.Result
	if o.ckptDir != "" {
		// Durable mode: periodic checkpoints + round WAL; -resume picks up
		// a crashed or interrupted run exactly where it left off.
		runner, rerr := fl.NewRunner(tr, o.ckptDir, o.ckptEvery)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "fedora-train:", rerr)
			os.Exit(1)
		}
		defer runner.Close()
		if o.resume {
			rep, rerr := runner.Resume()
			if rerr != nil {
				fmt.Fprintln(os.Stderr, "fedora-train: resume:", rerr)
				os.Exit(1)
			}
			for _, skip := range rep.Skipped {
				fmt.Fprintln(os.Stderr, "fedora-train: resume: skipped corrupt checkpoint:", skip)
			}
			fmt.Printf("resumed from epoch %d (round %d), replayed %d WAL round(s)\n",
				rep.RestoredEpoch, rep.RestoredRound, rep.ReplayedRounds)
		}
		res, err = runner.Run(rounds)
		if err == nil {
			_, err = runner.Checkpoint() // final snapshot for clean restart
		}
	} else {
		res, err = tr.Run(rounds)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedora-train:", err)
		os.Exit(1)
	}
	where := "in-process"
	shardsStr := "?"
	if ctrl := tr.Controller(); ctrl != nil {
		shardsStr = fmt.Sprintf("%d", ctrl.Shards())
	} else {
		where = "remote " + o.remote
	}
	fmt.Printf("dataset=%s mode=%s eps=%g rounds=%d workers=%d shards=%s controller=%s\n",
		o.dsName, o.mode, o.eps, rounds, res.Workers, shardsStr, where)
	if sdk != nil {
		st := sdk.Stats()
		fmt.Printf("http: %d requests, %d retries, %d failures\n", st.Requests, st.Retries, st.Failures)
	}
	fmt.Printf("AUC:              %.4f\n", res.AUC)
	fmt.Printf("reduced accesses: %.2f%%\n", 100*res.ReducedAccesses)
	fmt.Printf("dummy accesses:   %.2f%% of optimum\n", 100*res.DummyFrac)
	fmt.Printf("lost accesses:    %.2f%% of optimum\n", 100*res.LostFrac)
	fmt.Printf("wall time:        %v\n", res.Elapsed.Round(1e6))
	if o.uploadCodec != "" {
		perRound := uint64(0)
		if res.Rounds > 0 {
			perRound = res.WireBytes / uint64(res.Rounds)
		}
		fmt.Printf("upload plane:     codec=%s %d bytes total (%d bytes/round), %d saturations\n",
			o.uploadCodec, res.WireBytes, perRound, res.Saturations)
	}
	fmt.Printf("phase breakdown (wall clock, %d rounds):\n", res.Rounds)
	phases := []metrics.Phase{
		{Name: "select", D: res.Phases.Select},
		{Name: "union", D: res.Phases.Union},
		{Name: "oram-read", D: res.Phases.ORAMRead},
		{Name: "train", D: res.Phases.Train},
		{Name: "aggregate", D: res.Phases.Aggregate},
	}
	if o.prefetch {
		// Background phases, overlapped with train: oram-read above is
		// blocking read time only under the pipeline.
		phases = append(phases,
			metrics.Phase{Name: "prefetch", D: res.Phases.Prefetch},
			metrics.Phase{Name: "evict", D: res.Phases.Evict})
	}
	fmt.Print(indent(metrics.RenderPhases(phases), "  "))
	if ctrl := tr.Controller(); ctrl != nil && o.prefetch {
		rep := ctrl.PrefetchReport()
		fmt.Printf("prefetch: %d staged rows served, %d staged but never served\n", rep.Hits, rep.Wasted)
	}
	if ctrl := tr.Controller(); ctrl != nil {
		if reps := ctrl.StorageReports(); len(reps) > 0 {
			fmt.Println("storage (measured real-I/O latencies):")
			for _, rep := range reps {
				fmt.Print(indent(rep.String(), "  "))
			}
		}
	}
}

// indent prefixes every non-empty line.
func indent(s, pre string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = pre + l
		}
	}
	return strings.Join(lines, "\n")
}
