// Command fedora-bench regenerates the paper's performance figures:
//
//	fedora-bench -fig3             Eq.3 PDFs (Figure 3)
//	fedora-bench -fig7             SSD lifetime sweep (Figure 7)
//	fedora-bench -fig8             round-latency overhead sweep (Figure 8)
//	fedora-bench -fig9             cost/power/energy vs DRAM (Figure 9)
//	fedora-bench -fig10            scratchpad ablation (Figure 10)
//	fedora-bench -ablation-bucket  bucket-size ablation (Sec 6.6)
//	fedora-bench -ablation-evict   eviction-period (A) sweep
//	fedora-bench -ablation-chunk   union chunk-size sweep
//	fedora-bench -ablation-shape   e-FDP shape (Y) sweep
//	fedora-bench -parallel         FL round wall-clock vs worker count
//	fedora-bench -shards           FL round wall-clock vs ORAM shard count
//	fedora-bench -storage-compare  sim vs file-backed storage: latency + determinism
//	fedora-bench -wire             upload bytes/round per wire codec (8×32, 16×64)
//	fedora-bench -all              everything above
//
// -quick restricts sweeps to the Small/10K point for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/wire"
)

func main() {
	var (
		fig3   = flag.Bool("fig3", false, "render Figure 3 (e-FDP PDFs)")
		fig7   = flag.Bool("fig7", false, "run Figure 7 (SSD lifetime)")
		fig8   = flag.Bool("fig8", false, "run Figure 8 (latency overhead)")
		fig9   = flag.Bool("fig9", false, "run Figure 9 (cost/power/energy)")
		fig10  = flag.Bool("fig10", false, "run Figure 10 (scratchpad ablation)")
		bucket = flag.Bool("ablation-bucket", false, "run the Sec 6.6 bucket-size ablation")
		evict  = flag.Bool("ablation-evict", false, "sweep the eviction period A")
		chunk  = flag.Bool("ablation-chunk", false, "sweep the union chunk size")
		shape  = flag.Bool("ablation-shape", false, "sweep the e-FDP shape Y")
		sched  = flag.Bool("ablation-schedule", false, "FL-friendly vs vanilla RAW ORAM schedule")
		par    = flag.Bool("parallel", false, "sweep the FL trainer's worker count and report round wall-clock + speedup")
		shardS = flag.Bool("shards", false, "sweep the embedding-table shard count and report round wall-clock + oram-read speedup")
		prefB  = flag.Bool("prefetch", false, "compare sync vs lookahead-prefetch rounds at several worker x shard points: blocking oram-read wall, hidden fraction, bit-identical fingerprints")
		geom   = flag.Bool("geometry", false, "print the derived ORAM configurations (Sec 6.1)")
		family = flag.Bool("ablation-family", false, "tree vs shuffling ORAM family (Sec 7)")
		all    = flag.Bool("all", false, "run every experiment")
		quick  = flag.Bool("quick", false, "restrict sweeps to the Small/10K point")
		rounds = flag.Int("rounds", 2, "simulated FL rounds per measurement point")
		seed   = flag.Int64("seed", 1, "deterministic seed")
		csvOut = flag.String("csv", "", "also write the Fig 7/8 sweep to this CSV file")
		brkdwn = flag.Bool("fig8-breakdown", false, "per-phase breakdown of Figure 8")
		seeds  = flag.Int("seeds", 0, "multi-seed mode: repeat the Small/10K FEDORA(e=1) point N times and report mean ± CI")

		wireB = flag.Bool("wire", false, "compare upload bytes/round across the wire codecs (plaintext | masked | masked-sparse | subspace) at the 8×32 and 16×64 grids, verifying bit-identical models along the way")

		storCmp       = flag.Bool("storage-compare", false, "run the same FL training over the simulator and the file-backed device; verify bit-identical models and report measured real-I/O latencies")
		storageDir    = flag.String("storage-dir", "", "directory for -storage-compare backing files (default: a fresh temp dir)")
		storageDirect = flag.Bool("storage-direct", false, "request O_DIRECT on backing files (falls back to buffered where unsupported, e.g. tmpfs)")
	)
	flag.Parse()

	opts := experiments.SweepOptions{Quick: *quick, Rounds: *rounds, Seed: *seed}
	any := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fedora-bench:", err)
		os.Exit(1)
	}

	if *geom || *all {
		any = true
		rows, err := experiments.RunGeometry()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderGeometry(rows))
	}
	if *fig3 || *all {
		any = true
		out, err := experiments.RenderFig3()
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
	}
	var sweep []experiments.SweepPoint
	needSweep := *fig7 || *fig8 || *brkdwn || *all
	if needSweep {
		any = true
		var err error
		sweep, err = experiments.RunSweep(opts)
		if err != nil {
			fail(err)
		}
	}
	if *fig7 || *all {
		fmt.Println(experiments.RenderFig7(sweep))
	}
	if needSweep && *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteSweepCSV(f, sweep); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n\n", *csvOut)
	}
	if *fig8 || *all {
		fmt.Println(experiments.RenderFig8(sweep))
	}
	if (*brkdwn || *all) && needSweep {
		fmt.Println(experiments.RenderFig8Breakdown(sweep))
	}
	if *seeds > 0 {
		any = true
		sum, err := experiments.RunPerfSeeds(experiments.PerfConfig{
			Scale: dataset.Scales[0], Updates: 10000,
			System: experiments.SysFedoraEps1, Workload: dataset.PerfWorkloads[1],
			Rounds: *rounds, Seed: *seed,
		}, *seeds)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Small/10K FEDORA(e=1) over %d seeds:\n", *seeds)
		fmt.Printf("  lifetime (months): %s\n", sum.Lifetime)
		fmt.Printf("  overhead (s):      %s\n\n", sum.Overhead)
	}
	if *fig9 || *all {
		any = true
		rows, err := experiments.RunFig9(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig9(rows))
	}
	if *fig10 || *all {
		any = true
		rows, err := experiments.RunFig10(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig10(rows))
	}
	if *bucket || *all {
		any = true
		rows, err := experiments.RunBucketAblation(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderBucketAblation(rows))
	}
	if *evict || *all {
		any = true
		rows, err := experiments.RunEvictPeriodAblation(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderEvictPeriodAblation(rows))
	}
	if *chunk || *all {
		any = true
		rows, err := experiments.RunChunkAblation(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderChunkAblation(rows))
	}
	if *shape || *all {
		any = true
		rows, err := experiments.RunShapeAblation(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderShapeAblation(rows))
	}
	if *sched || *all {
		any = true
		rows, err := experiments.RunScheduleAblation(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderScheduleAblation(rows))
	}
	if *family || *all {
		any = true
		rows, err := experiments.RunFamilyAblation(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFamilyAblation(rows))
	}
	if *par || *all {
		any = true
		if err := runParallelSweep(*rounds, *seed, *quick); err != nil {
			fail(err)
		}
	}
	if *shardS || *all {
		any = true
		// The -csv path is owned by the Fig 7/8 sweep when that runs too.
		csvPath := *csvOut
		if needSweep {
			csvPath = ""
		}
		if err := runShardSweep(*rounds, *seed, *quick, csvPath); err != nil {
			fail(err)
		}
	}
	if *prefB || *all {
		any = true
		// The -csv path is owned by earlier sweeps when those run too.
		csvPath := *csvOut
		if needSweep || *shardS {
			csvPath = ""
		}
		if err := runPrefetchSweep(*rounds, *seed, *quick, csvPath); err != nil {
			fail(err)
		}
	}
	if *wireB || *all {
		any = true
		// The -csv path is owned by earlier sweeps when those run too.
		csvPath := *csvOut
		if needSweep || *shardS || *prefB {
			csvPath = ""
		}
		if err := runWireSweep(*rounds, *seed, *quick, csvPath); err != nil {
			fail(err)
		}
	}
	if *storCmp || *all {
		any = true
		if err := runStorageCompare(*rounds, *seed, *quick, *storageDir, *storageDirect); err != nil {
			fail(err)
		}
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}

// runParallelSweep measures FL round wall-clock at increasing worker
// counts on one dataset/config, verifying along the way that every
// worker count reproduces the same model (same seed ⇒ same AUC).
func runParallelSweep(rounds int, seed int64, quick bool) error {
	cfg := dataset.MovieLensConfig()
	cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 2000, 400, 60
	if quick {
		cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 400, 150, 40
	}
	ds := dataset.Generate(cfg)
	if rounds <= 0 {
		rounds = 2
	}

	max := runtime.GOMAXPROCS(0)
	var counts []int
	for w := 1; w < max; w *= 2 {
		counts = append(counts, w)
	}
	counts = append(counts, max)

	fmt.Printf("FL round parallelism (MovieLens-like, %d users, %d rounds, GOMAXPROCS=%d)\n\n",
		cfg.NumUsers, rounds, max)
	fmt.Printf("%8s  %12s  %12s  %8s  %7s\n", "workers", "round wall", "train phase", "speedup", "AUC")
	var base float64
	var baseAUC float64
	var lastPhases fl.PhaseTimings
	for _, w := range counts {
		tr, err := fl.New(fl.Config{
			Dataset: ds, Dim: 8, Hidden: 16, UsePrivate: true,
			Epsilon: 1, ClientsPerRound: 50, LocalEpochs: 2,
			LocalLR: 0.1, Seed: seed, Workers: w,
		})
		if err != nil {
			return err
		}
		res, err := tr.Run(rounds)
		if err != nil {
			return err
		}
		perRound := res.Phases.Total / time.Duration(rounds)
		trainPer := res.Phases.Train / time.Duration(rounds)
		if w == 1 {
			base = float64(res.Phases.Total)
			baseAUC = res.AUC
		} else if res.AUC != baseAUC {
			return fmt.Errorf("determinism violated: workers=%d AUC %v != workers=1 AUC %v",
				w, res.AUC, baseAUC)
		}
		fmt.Printf("%8d  %12v  %12v  %7.2fx  %.4f\n",
			w, perRound.Round(time.Microsecond), trainPer.Round(time.Microsecond),
			base/float64(res.Phases.Total), res.AUC)
		lastPhases = res.Phases
	}
	fmt.Printf("\nphase breakdown at workers=%d (wall clock, %d rounds):\n", max, rounds)
	fmt.Print(metrics.RenderPhases([]metrics.Phase{
		{Name: "select", D: lastPhases.Select},
		{Name: "union", D: lastPhases.Union},
		{Name: "oram-read", D: lastPhases.ORAMRead},
		{Name: "train", D: lastPhases.Train},
		{Name: "aggregate", D: lastPhases.Aggregate},
	}))
	return nil
}

// runShardSweep measures FL round wall-clock as the embedding table is
// partitioned across S parallel per-shard ORAMs (ShardWorkers = S). At
// ε = 0 every union entry is read and sharding must not change the
// model, so the sweep doubles as a determinism check: every shard count
// has to land on the same AUC.
func runShardSweep(rounds int, seed int64, quick bool, csvPath string) error {
	cfg := dataset.MovieLensConfig()
	cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 2000, 400, 60
	if quick {
		cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 400, 150, 40
	}
	ds := dataset.Generate(cfg)
	if rounds <= 0 {
		rounds = 2
	}

	counts := []int{1, 2, 4, 8}
	fmt.Printf("ORAM sharding (MovieLens-like, %d items, %d rounds, GOMAXPROCS=%d)\n\n",
		cfg.NumItems, rounds, runtime.GOMAXPROCS(0))
	fmt.Printf("%8s  %12s  %12s  %12s  %8s  %7s\n",
		"shards", "round wall", "oram-read", "union", "speedup", "AUC")
	var csv strings.Builder
	csv.WriteString("shards,round_wall_us,oram_read_us,union_us,speedup,auc\n")
	var base float64
	var baseAUC float64
	for _, s := range counts {
		tr, err := fl.New(fl.Config{
			Dataset: ds, Dim: 8, Hidden: 16, UsePrivate: true,
			Epsilon: 0, ClientsPerRound: 50, LocalEpochs: 2,
			LocalLR: 0.1, Seed: seed, Shards: s, ShardWorkers: s,
		})
		if err != nil {
			return err
		}
		res, err := tr.Run(rounds)
		if err != nil {
			return err
		}
		perRound := res.Phases.Total / time.Duration(rounds)
		readPer := res.Phases.ORAMRead / time.Duration(rounds)
		unionPer := res.Phases.Union / time.Duration(rounds)
		if s == 1 {
			base = float64(res.Phases.ORAMRead)
			baseAUC = res.AUC
		} else if res.AUC != baseAUC {
			return fmt.Errorf("determinism violated: shards=%d AUC %v != shards=1 AUC %v",
				s, res.AUC, baseAUC)
		}
		speedup := base / float64(res.Phases.ORAMRead)
		fmt.Printf("%8d  %12v  %12v  %12v  %7.2fx  %.4f\n",
			s, perRound.Round(time.Microsecond), readPer.Round(time.Microsecond),
			unionPer.Round(time.Microsecond), speedup, res.AUC)
		fmt.Fprintf(&csv, "%d,%d,%d,%d,%.3f,%.4f\n",
			s, perRound.Microseconds(), readPer.Microseconds(),
			unionPer.Microseconds(), speedup, res.AUC)
	}
	fmt.Println()
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", csvPath)
	}
	return nil
}

// runPrefetchSweep measures how much of the sync pipeline's oram-read
// wall the lookahead prefetch pipeline hides behind training. Each
// (workers, shards) point trains the same study twice — synchronous and
// prefetch — over a shared driver loop; the first (inherently cold)
// round is excluded from the tally, fingerprints must match bit for bit,
// and the hidden fraction is 1 − blocked/sync where "blocked" is the
// pipeline's residual blocking read wall. The 16×64 point carries the
// acceptance bar: the pipeline must hide ≥50% of the sync read wall.
func runPrefetchSweep(rounds int, seed int64, quick bool, csvPath string) error {
	cfg := dataset.MovieLensConfig()
	cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 2000, 400, 60
	if quick {
		cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 400, 150, 40
	}
	ds := dataset.Generate(cfg)
	if rounds <= 0 {
		rounds = 2
	}
	points := []struct{ workers, shards int }{{4, 1}, {8, 16}, {16, 64}}
	if quick {
		points = []struct{ workers, shards int }{{2, 1}, {4, 4}}
	}

	// measure drives rounds+1 rounds (round 1 is the cold warmup) and
	// tallies walls over the steady-state rounds only.
	type tally struct {
		read, train, prefetchW, evictW time.Duration
		hits, wasted                   uint64
		fp                             uint64
	}
	measure := func(workers, shards int, prefetch bool) (tally, error) {
		tr, err := fl.New(fl.Config{
			Dataset: ds, Dim: 8, Hidden: 16, UsePrivate: true,
			Epsilon: 1, ClientsPerRound: 50, LocalEpochs: 2,
			LocalLR: 0.1, Seed: seed, Workers: workers,
			Shards: shards, ShardWorkers: shards, Prefetch: prefetch,
		})
		if err != nil {
			return tally{}, err
		}
		defer tr.Close()
		var out tally
		for r := 0; r <= rounds; r++ {
			rep, err := tr.RunRound()
			if err != nil {
				return tally{}, err
			}
			if r > 0 {
				out.read += rep.Timings.ORAMRead
				out.train += rep.Timings.Train
				out.prefetchW += rep.Timings.Prefetch
				out.evictW += rep.Timings.Evict
				out.hits += rep.PrefetchHits
				out.wasted += rep.PrefetchWasted
			}
			if r < rounds {
				tr.StageNext()
			}
		}
		out.fp, err = tr.Fingerprint()
		return out, err
	}

	fmt.Printf("lookahead prefetch pipeline (MovieLens-like, %d items, %d steady rounds after warmup)\n\n",
		cfg.NumItems, rounds)
	fmt.Printf("%16s  %12s  %12s  %12s  %8s  %10s\n",
		"workers x shards", "sync read", "blocked read", "train", "hidden", "hits/waste")
	var csv strings.Builder
	csv.WriteString("workers,shards,sync_read_us,blocked_read_us,prefetch_us,evict_us,train_us,hidden_frac,hits,wasted,fingerprint\n")
	for _, p := range points {
		sync, err := measure(p.workers, p.shards, false)
		if err != nil {
			return err
		}
		pf, err := measure(p.workers, p.shards, true)
		if err != nil {
			return err
		}
		if pf.fp != sync.fp {
			return fmt.Errorf("prefetch changed the model at %dx%d: %016x != sync %016x",
				p.workers, p.shards, pf.fp, sync.fp)
		}
		hidden := 0.0
		if sync.read > 0 {
			hidden = 1 - float64(pf.read)/float64(sync.read)
		}
		fmt.Printf("%11dx%-4d  %12v  %12v  %12v  %7.1f%%  %5d/%d\n",
			p.workers, p.shards, sync.read.Round(time.Microsecond),
			pf.read.Round(time.Microsecond), pf.train.Round(time.Microsecond),
			100*hidden, pf.hits, pf.wasted)
		fmt.Fprintf(&csv, "%d,%d,%d,%d,%d,%d,%d,%.3f,%d,%d,%016x\n",
			p.workers, p.shards, sync.read.Microseconds(), pf.read.Microseconds(),
			pf.prefetchW.Microseconds(), pf.evictW.Microseconds(),
			pf.train.Microseconds(), hidden, pf.hits, pf.wasted, pf.fp)
		if p.workers == 16 && p.shards == 64 && hidden < 0.5 {
			return fmt.Errorf("16x64 acceptance: pipeline hides only %.1f%% of the sync oram-read wall (≥50%% required)", 100*hidden)
		}
		if p.workers == 16 && p.shards == 64 {
			fmt.Printf("\n  16x64 acceptance: %.1f%% of the sync oram-read wall hidden behind train (≥50%% required)\n", 100*hidden)
		}
	}
	fmt.Println()
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", csvPath)
	}
	return nil
}

// runWireSweep measures upload bytes/round for every wire codec at two
// embedding geometries — dim×k = 8×32 and 16×64 (k = rows each client
// may request). It doubles as an exactness check: plaintext, masked and
// masked-sparse must land on the same model fingerprint (they encode
// the same fixed-point sums), and at 16×64 a sparse codec must beat the
// full-table masked baseline by ≥5× on bytes — the upload plane's
// acceptance criterion.
func runWireSweep(rounds int, seed int64, quick bool, csvPath string) error {
	if rounds <= 0 {
		rounds = 2
	}
	grids := []struct {
		dim, hidden, k int
	}{
		{8, 16, 32},
		{16, 32, 64},
	}
	codecs := wire.Codecs()

	fmt.Printf("wire upload plane: bytes/round per codec (%d rounds, 50 clients/round)\n\n", rounds)
	var csv strings.Builder
	csv.WriteString("grid,codec,bytes_per_round,vs_masked,auc,fingerprint\n")
	for _, g := range grids {
		cfg := dataset.MovieLensConfig()
		cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 2000, 400, g.k*3/2
		if quick {
			cfg.NumUsers = 150
		}
		ds := dataset.Generate(cfg)
		label := fmt.Sprintf("%dx%d", g.dim, g.k)

		fmt.Printf("grid %s (dim %d, ≤%d rows/client, %d items):\n", label, g.dim, g.k, cfg.NumItems)
		fmt.Printf("  %-14s %14s %11s %8s  %-16s\n", "codec", "bytes/round", "vs masked", "AUC", "fingerprint")
		bytesPer := map[wire.Codec]uint64{}
		fps := map[wire.Codec]uint64{}
		type row struct {
			codec wire.Codec
			auc   float64
		}
		var rows []row
		for _, codec := range codecs {
			tr, err := fl.New(fl.Config{
				Dataset: ds, Dim: g.dim, Hidden: g.hidden, UsePrivate: true,
				Epsilon: 1, ClientsPerRound: 50, MaxFeaturesPerClient: g.k,
				LocalEpochs: 2, LocalLR: 0.1, Seed: seed,
				UploadCodec: string(codec),
			})
			if err != nil {
				return err
			}
			res, err := tr.Run(rounds)
			if err != nil {
				return err
			}
			fp, err := tr.Fingerprint()
			if err != nil {
				return err
			}
			bytesPer[codec] = res.WireBytes / uint64(rounds)
			fps[codec] = fp
			rows = append(rows, row{codec, res.AUC})
		}
		// Exactness: the three exact-sum codecs are bit-identical;
		// subspace is exact only within its selected coordinates.
		for _, codec := range []wire.Codec{wire.CodecMasked, wire.CodecMaskedSparse} {
			if fps[codec] != fps[wire.CodecPlaintext] {
				return fmt.Errorf("grid %s: %s fingerprint %016x != plaintext %016x",
					label, codec, fps[codec], fps[wire.CodecPlaintext])
			}
		}
		for _, r := range rows {
			ratio := float64(bytesPer[wire.CodecMasked]) / float64(bytesPer[r.codec])
			fmt.Printf("  %-14s %14d %10.1fx %8.4f  %016x\n",
				string(r.codec), bytesPer[r.codec], ratio, r.auc, fps[r.codec])
			fmt.Fprintf(&csv, "%s,%s,%d,%.1f,%.4f,%016x\n",
				label, r.codec, bytesPer[r.codec], ratio, r.auc, fps[r.codec])
		}
		fmt.Println()

		// Acceptance: at 16×64 a sparse codec must cut upload bytes ≥5×
		// relative to the full-table masked baseline.
		if g.dim == 16 {
			best := bytesPer[wire.CodecMaskedSparse]
			if b := bytesPer[wire.CodecSubspace]; b < best {
				best = b
			}
			ratio := float64(bytesPer[wire.CodecMasked]) / float64(best)
			if ratio < 5 {
				return fmt.Errorf("grid %s: best sparse codec only %.1fx below masked (want ≥5x)", label, ratio)
			}
			fmt.Printf("  16x64 acceptance: sparse codec is %.1fx below the masked full-table baseline (≥5x required)\n\n", ratio)
		}
	}
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", csvPath)
	}
	return nil
}

// runStorageCompare trains the same FL configuration over both storage
// backends and verifies the tentpole invariant: the backend changes only
// durations, never bytes, so sim and file land on the same model
// fingerprint at equal seed. For the file run it also reports the
// measured (not modelled) per-op latency percentiles of the real I/O.
func runStorageCompare(rounds int, seed int64, quick bool, dir string, direct bool) error {
	cfg := dataset.MovieLensConfig()
	cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 2000, 400, 60
	if quick {
		cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 400, 150, 40
	}
	ds := dataset.Generate(cfg)
	if rounds <= 0 {
		rounds = 2
	}

	specs := []storage.Spec{{Kind: storage.KindSim}}
	fileSpec, err := storage.ParseSpec("file", dir, direct)
	if err != nil {
		return err
	}
	specs = append(specs, fileSpec)

	fmt.Printf("storage backends (MovieLens-like, %d users, %d rounds)\n\n", cfg.NumUsers, rounds)
	fmt.Printf("%8s  %12s  %12s  %7s  %18s\n", "backend", "round wall", "oram-read", "AUC", "fingerprint")
	var (
		baseFP  uint64
		baseAUC float64
		reports []storage.Report
	)
	for i, spec := range specs {
		tr, err := fl.New(fl.Config{
			Dataset: ds, Dim: 8, Hidden: 16, UsePrivate: true,
			Epsilon: 1, ClientsPerRound: 50, LocalEpochs: 2,
			LocalLR: 0.1, Seed: seed, Storage: spec,
		})
		if err != nil {
			return err
		}
		res, err := tr.Run(rounds)
		if err != nil {
			tr.Close()
			return err
		}
		fp, err := tr.Fingerprint()
		if err != nil {
			tr.Close()
			return err
		}
		if i == 0 {
			baseFP, baseAUC = fp, res.AUC
		} else if fp != baseFP || res.AUC != baseAUC {
			tr.Close()
			return fmt.Errorf("backend changed the model: %s fingerprint %016x (AUC %v) != sim %016x (AUC %v)",
				spec.Kind, fp, res.AUC, baseFP, baseAUC)
		}
		perRound := res.Phases.Total / time.Duration(rounds)
		readPer := res.Phases.ORAMRead / time.Duration(rounds)
		fmt.Printf("%8s  %12v  %12v  %.4f  %16x\n",
			spec.Kind, perRound.Round(time.Microsecond), readPer.Round(time.Microsecond), res.AUC, fp)
		reports = append(reports, tr.Controller().StorageReports()...)
		if err := tr.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("\nmodel bit-identical across backends (fingerprint %016x)\n\n", baseFP)
	fmt.Println("file backend, measured real-I/O latencies:")
	for _, rep := range reports {
		fmt.Print(rep)
	}
	fmt.Println()
	return nil
}
