// Command fedora runs a single FEDORA round pipeline end-to-end on a
// configurable table and prints what the controller did: union sizes,
// the ε-FDP sample, ORAM traffic, modelled latency, and the projected
// SSD lifetime. Useful for exploring configurations interactively.
//
//	fedora -rows 10000000 -entry 64 -updates 10000 -eps 1 -backend fedora
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fedora"
)

func main() {
	var (
		rows     = flag.Uint64("rows", 10_000_000, "embedding-table height N")
		entry    = flag.Int("entry", 64, "embedding row size in bytes (multiple of 4)")
		updates  = flag.Int("updates", 10_000, "requests per round (K)")
		eps      = flag.Float64("eps", 1.0, "epsilon (0 = perfect FDP, k=K)")
		backend  = flag.String("backend", "fedora", "fedora | pathoram+ | dram")
		workload = flag.String("workload", "taobao-val", "workload key (see dataset.PerfWorkloads)")
		rounds   = flag.Int("n", 2, "rounds to simulate")
		sorted   = flag.Bool("sorted-union", false, "use the O(K log^2 K) sorting-network union")
		seed     = flag.Int64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	var be fedora.Backend
	switch *backend {
	case "fedora":
		be = fedora.BackendFedora
	case "pathoram+":
		be = fedora.BackendPathORAMPlus
	case "dram":
		be = fedora.BackendDRAM
	default:
		fmt.Fprintf(os.Stderr, "fedora: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	w, ok := dataset.WorkloadByKey(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "fedora: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	const featPerClient = 100
	clients := *updates / featPerClient
	if clients < 1 {
		clients = 1
	}
	ctrl, err := fedora.New(fedora.Config{
		Backend:              be,
		NumRows:              *rows,
		Dim:                  *entry / 4,
		Epsilon:              *eps,
		HideCount:            w.HideCount,
		MaxClientsPerRound:   clients,
		MaxFeaturesPerClient: featPerClient,
		Seed:                 *seed,
		Phantom:              true,
		SortedUnion:          *sorted,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedora:", err)
		os.Exit(1)
	}
	fmt.Printf("backend=%s  N=%d  entry=%dB  K=%d  eps=%g  workload=%s\n",
		be, *rows, *entry, *updates, *eps, w.Name)
	fmt.Printf("main ORAM: %.2f GB on %s; controller DRAM: %.2f GB\n\n",
		float64(ctrl.MainORAMBytes())/1e9, ctrl.SSDDevice().Profile().Name,
		float64(ctrl.DRAMResidentBytes())/1e9)

	rng := rand.New(rand.NewSource(*seed + 7))
	for i := 0; i < *rounds; i++ {
		reqs := w.GenRound(*rows, clients, featPerClient, rng)
		r, err := ctrl.BeginRound(reqs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedora:", err)
			os.Exit(1)
		}
		st, err := r.Finish()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedora:", err)
			os.Exit(1)
		}
		fmt.Printf("round %d: K=%d k_union=%d k=%d dummy=%d lost=%d chunks=%d eps=%.4g\n",
			i+1, st.K, st.KUnion, st.KSampled, st.Dummy, st.Lost, st.Chunks, st.RoundEpsilon)
		fmt.Printf("  time: union=%v read=%v update=%v total=%v (%.1f%% of a 2-min round)\n",
			st.UnionTime.Round(1e6), st.ReadTime.Round(1e6), st.UpdateTime.Round(1e6),
			st.Total().Round(1e6), 100*float64(st.Total())/float64(experiments.FLRoundBaseline))
	}
	ssd := ctrl.SSDDevice().Stats()
	fmt.Printf("\nSSD traffic: %.2f GB read, %.2f GB written over %d rounds\n",
		float64(ssd.BytesRead)/1e9, float64(ssd.BytesWritten)/1e9, *rounds)
	if be != fedora.BackendDRAM {
		perRound := ssd.BytesWritten / uint64(*rounds)
		life := costmodel.SSDLifetime(ctrl.MainORAMBytes(), perRound,
			experiments.FLRoundBaseline)
		fmt.Printf("projected SSD lifetime (SSD = ORAM size): %.1f months\n",
			costmodel.Months(life))
	}
}
