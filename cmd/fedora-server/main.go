// Command fedora-server runs a FEDORA controller behind the HTTP API of
// internal/api: an FL orchestrator POSTs rounds, clients GET their
// embedding rows and POST gradients.
//
//	fedora-server -listen :8080 -rows 1000000 -dim 16 -eps 1
//
// Try it:
//
//	curl -s localhost:8080/v1/status | jq .
//	curl -s -X POST localhost:8080/v1/rounds -d '{"requests":[[7,21],[7,99]]}'
//	curl -s 'localhost:8080/v1/rounds/current/entry?row=7'
//	curl -s -X POST localhost:8080/v1/rounds/current/gradient \
//	     -d '{"row":7,"grad":[1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1],"samples":1}'
//	curl -s -X POST localhost:8080/v1/rounds/current/finish | jq .
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/api"
	"repro/internal/fedora"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "listen address")
		rows     = flag.Uint64("rows", 1_000_000, "embedding-table height")
		dim      = flag.Int("dim", 16, "embedding dimension (floats)")
		eps      = flag.Float64("eps", 1.0, "epsilon (0 = perfect FDP)")
		clients  = flag.Int("max-clients", 100, "max clients per round")
		features = flag.Int("max-features", 100, "max features per client")
		lr       = flag.Float64("lr", 1.0, "server learning rate")
		seed     = flag.Int64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	ctrl, err := fedora.New(fedora.Config{
		NumRows:              *rows,
		Dim:                  *dim,
		Epsilon:              *eps,
		MaxClientsPerRound:   *clients,
		MaxFeaturesPerClient: *features,
		LearningRate:         float32(*lr),
		Seed:                 *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fedora-server: N=%d dim=%d eps=%g — main ORAM %.2f GB (SSD), %.2f GB DRAM\n",
		*rows, *dim, *eps,
		float64(ctrl.MainORAMBytes())/1e9, float64(ctrl.DRAMResidentBytes())/1e9)
	fmt.Printf("listening on %s\n", *listen)
	log.Fatal(http.ListenAndServe(*listen, api.NewServer(ctrl).Handler()))
}
