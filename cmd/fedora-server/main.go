// Command fedora-server runs a FEDORA controller behind the HTTP API of
// internal/api: an FL orchestrator POSTs rounds, clients GET their
// embedding rows and POST gradients.
//
//	fedora-server -listen :8080 -rows 1000000 -dim 16 -eps 1
//
// With -checkpoint-dir the server restores the newest valid controller
// checkpoint on startup and writes one on SIGINT/SIGTERM after draining
// in-flight requests, so a restart continues from the saved ORAM and
// model state.
//
// With -fl-dataset the controller is built from the FL accuracy-study
// configuration (fl.SingleConfig) instead of the raw -rows/-dim flags,
// so a remote fedora-train with the same dataset/mode/eps/seed
// reproduces the in-process run bit for bit:
//
//	fedora-server -listen :8080 -fl-dataset movielens -fl-mode hide-val -eps 1 -fl-quick
//	fedora-train  -single -remote http://localhost:8080 -dataset movielens -mode hide-val -eps 1 -quick
//
// Try it (v2 API; see docs/API.md — /v1 is deprecated):
//
//	curl -s localhost:8080/v2/status | jq .
//	curl -s -X POST localhost:8080/v2/rounds -d '{"requests":[[7,21],[7,99]]}'
//	curl -s -X POST localhost:8080/v2/rounds/r1/entries -d '{"rows":[7,21,99]}'
//	curl -s -X POST localhost:8080/v2/rounds/r1/gradients \
//	     -d '{"gradients":[{"row":7,"grad":[1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1],"samples":1}]}'
//	curl -s -X POST localhost:8080/v2/rounds/r1/finish | jq .
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/fault"
	"repro/internal/fedora"
	"repro/internal/fl"
	"repro/internal/persist"
	"repro/internal/storage"
	"repro/internal/wire"
)

// ctrlSection names the controller snapshot inside checkpoint files.
const ctrlSection = "fedora/controller"

func main() {
	var (
		listen   = flag.String("listen", ":8080", "listen address")
		rows     = flag.Uint64("rows", 1_000_000, "embedding-table height")
		dim      = flag.Int("dim", 16, "embedding dimension (floats)")
		eps      = flag.Float64("eps", 1.0, "epsilon (0 = perfect FDP)")
		clients  = flag.Int("max-clients", 100, "max clients per round")
		features = flag.Int("max-features", 100, "max features per client")
		lr       = flag.Float64("lr", 1.0, "server learning rate")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		shards   = flag.Int("shards", 1, "partition the table across this many parallel per-shard ORAMs (1 = monolithic)")
		prefetch = flag.Bool("prefetch", false, "lookahead pipeline: rounds staged via POST /v2/rounds/{id}/stage stream their ORAM reads on a background fetcher and defer write-back; bit-identical to sync")
		ckptDir  = flag.String("checkpoint-dir", "", "restore controller state on start, checkpoint on shutdown")
		drain    = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain limit")

		flDataset = flag.String("fl-dataset", "", "build the controller for the FL study instead of raw -rows/-dim: movielens | taobao (pairs with fedora-train -remote)")
		flMode    = flag.String("fl-mode", "hide-val", "privacy mode with -fl-dataset: pub | hide-val | hide-num")
		flQuick   = flag.Bool("fl-quick", false, "trimmed dataset with -fl-dataset")

		roundDeadline = flag.Duration("round-deadline", 0, "finish rounds with partial gradients after this long (0 = no deadline)")
		uploadCodec   = flag.String("upload-codec", "", "upload-plane policy: require this wire codec on gradient uploads (plaintext | masked | masked-sparse | subspace); a masked policy also rejects plain JSON gradients (\"\" = accept anything)")

		memberFirst = flag.Int("member-first", 0, "with -member-count: first GLOBAL shard this member serves in a fedora-coordinator cluster")
		memberCount = flag.Int("member-count", 0, "serve only shards [member-first, member-first+member-count) of the GLOBAL -shards partition as a cluster member (0 = serve everything)")

		faultPlan   = flag.String("fault-plan", "", "JSON fault-plan file: inject device faults for chaos testing (see internal/fault)")
		maxInflight = flag.Int("max-inflight", 0, "bound concurrent round operations; excess requests are shed with 503 + Retry-After (0 = unbounded)")
		ckptEvery   = flag.Int("checkpoint-every", 0, "with -checkpoint-dir: checkpoint every N healthy rounds and auto-recover quarantined shards after degraded rounds (0 = shutdown checkpoint only)")

		storageKind   = flag.String("storage", "sim", "main-device storage backend: sim | file (real page-aligned I/O against backing files)")
		storageDir    = flag.String("storage-dir", "", "directory for -storage=file backing files (default: a fresh temp dir)")
		storageDirect = flag.Bool("storage-direct", false, "request O_DIRECT on -storage=file backing files (falls back to buffered I/O where unsupported)")
	)
	flag.Parse()

	spec, specErr := storage.ParseSpec(*storageKind, *storageDir, *storageDirect)
	if specErr != nil {
		log.Fatal(specErr)
	}

	var plan *fault.Plan
	if *faultPlan != "" {
		var err error
		if plan, err = fault.Load(*faultPlan); err != nil {
			log.Fatal(err)
		}
		plan.ArmCrashPoints()
		fmt.Printf("fedora-server: fault plan %s armed (%d rules, seed %d)\n",
			*faultPlan, len(plan.Rules), plan.Seed)
	}

	// Build the GLOBAL controller config first; member mode then slices
	// it, so a member process and the whole-table process it mirrors are
	// built from the exact same parameters.
	var (
		fc      fedora.Config
		err     error
		dimUsed = *dim
	)
	if *flDataset != "" {
		flCfg, cfgErr := fl.SingleConfig(*flDataset, *eps, *flMode, *flQuick, *seed, 0, *shards)
		if cfgErr != nil {
			log.Fatal(cfgErr)
		}
		dimUsed = flCfg.Dim
		flCfg.WrapDevice = plan.Wrap
		flCfg.Storage = spec
		flCfg.Prefetch = *prefetch
		fc, err = fl.ControllerConfig(flCfg)
	} else {
		fc = fedora.Config{
			NumRows:              *rows,
			Dim:                  *dim,
			Epsilon:              *eps,
			MaxClientsPerRound:   *clients,
			MaxFeaturesPerClient: *features,
			LearningRate:         float32(*lr),
			Seed:                 *seed,
			Shards:               *shards,
			Prefetch:             *prefetch,
			WrapDevice:           plan.Wrap,
			Storage:              spec,
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	if *memberCount > 0 {
		// Cluster member: serve a contiguous slice of the global shard
		// partition under a fedora-coordinator. -shards stays the GLOBAL
		// total; the slice controller owns only its own rows.
		fc, err = fedora.SliceConfig(fc, *memberFirst, *memberCount)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fedora-server: cluster member serving shards [%d,%d) of %d\n",
			*memberFirst, *memberFirst+*memberCount, *shards)
	}
	ctrl, err := fedora.New(fc)
	if err != nil {
		log.Fatal(err)
	}

	var mgr *persist.Manager
	if *ckptDir != "" {
		mgr, err = persist.OpenManager(*ckptDir)
		if err != nil {
			log.Fatal(err)
		}
		if err := restoreController(mgr, ctrl); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("fedora-server: N=%d dim=%d eps=%g shards=%d — main ORAM %.2f GB (SSD), %.2f GB DRAM\n",
		ctrl.NumRows(), dimUsed, *eps, ctrl.Shards(),
		float64(ctrl.MainORAMBytes())/1e9, float64(ctrl.DRAMResidentBytes())/1e9)
	if spec.Kind == storage.KindFile {
		fmt.Printf("fedora-server: storage=file dir=%s direct=%v (%d backing file(s))\n",
			spec.Dir, spec.Direct, ctrl.Shards())
	}
	if *prefetch {
		fmt.Println("fedora-server: lookahead prefetch pipeline enabled (two-phase stage/begin rounds)")
	}
	fmt.Printf("listening on %s\n", *listen)

	var opts []api.Option
	if *roundDeadline > 0 {
		opts = append(opts, api.WithDefaultDeadline(*roundDeadline))
	}
	if *uploadCodec != "" {
		codec, err := wire.ParseCodec(*uploadCodec)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, api.WithUploadCodec(codec))
		fmt.Printf("fedora-server: upload-plane policy: %s\n", codec)
	}
	if *maxInflight > 0 {
		opts = append(opts, api.WithMaxInFlight(*maxInflight))
	}
	if *ckptEvery > 0 {
		if mgr == nil {
			log.Fatal("fedora-server: -checkpoint-every requires -checkpoint-dir")
		}
		opts = append(opts, api.WithAutoRecover(mgr, *ckptEvery))
	}
	srv := &http.Server{Addr: *listen, Handler: api.NewServer(ctrl, opts...).Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-sigCh:
		fmt.Printf("fedora-server: %v — draining\n", sig)
	}

	// Drain in-flight requests, then checkpoint the quiesced controller.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("fedora-server: drain: %v", err)
	}
	if mgr != nil {
		epoch, err := saveController(mgr, ctrl)
		switch {
		case errors.Is(err, fedora.ErrRoundOpen):
			// A round was in flight when the drain deadline hit; its state
			// is not snapshotable. The previous epoch stays authoritative.
			log.Printf("fedora-server: shutdown checkpoint skipped: %v", err)
		case err != nil:
			log.Fatalf("fedora-server: shutdown checkpoint: %v", err)
		default:
			fmt.Printf("fedora-server: checkpointed epoch %d to %s\n", epoch, mgr.Dir())
		}
	}
	if err := ctrl.Close(); err != nil {
		log.Printf("fedora-server: close storage: %v", err)
	}
}

// restoreController loads the newest valid checkpoint, if any.
func restoreController(mgr *persist.Manager, ctrl *fedora.Controller) error {
	cp, skipped, err := mgr.LoadLatest()
	if errors.Is(err, persist.ErrNoCheckpoint) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, skip := range skipped {
		log.Printf("fedora-server: skipped corrupt checkpoint: %v", skip)
	}
	blob, ok := cp.Get(ctrlSection)
	if !ok {
		return fmt.Errorf("checkpoint epoch %d has no %q section", cp.Epoch, ctrlSection)
	}
	if err := ctrl.Restore(blob); err != nil {
		return fmt.Errorf("restore epoch %d: %w", cp.Epoch, err)
	}
	fmt.Printf("fedora-server: restored epoch %d (round %d) from %s\n", cp.Epoch, ctrl.Round(), mgr.Dir())
	return nil
}

// saveController writes the controller as the next epoch.
func saveController(mgr *persist.Manager, ctrl *fedora.Controller) (uint64, error) {
	blob, err := ctrl.Snapshot()
	if err != nil {
		return 0, err
	}
	cp := persist.NewCheckpoint()
	cp.Put(ctrlSection, blob)
	epochs, err := mgr.Epochs()
	if err != nil {
		return 0, err
	}
	var epoch uint64 = 1
	if len(epochs) > 0 {
		epoch = epochs[len(epochs)-1] + 1
	}
	if err := mgr.Save(epoch, cp); err != nil {
		return 0, err
	}
	return epoch, mgr.Prune(3)
}
