// Command fedora-trace records and inspects request-trace files, the
// replayable workloads behind the performance experiments (the analogue
// of the paper artifact's pre-generated input traces).
//
//	fedora-trace -gen -workload taobao-num -rounds 5 -out trace.ftrc
//	fedora-trace -info trace.ftrc
//	fedora-trace -replay trace.ftrc -backend fedora -eps 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fedora"
	"repro/internal/trace"
)

func main() {
	var (
		gen      = flag.Bool("gen", false, "generate a trace")
		info     = flag.String("info", "", "print statistics of a trace file")
		replay   = flag.String("replay", "", "replay a trace through a controller")
		workload = flag.String("workload", "taobao-val", "workload key for -gen")
		scale    = flag.String("scale", "Small", "table scale for -gen: Small | Medium | Large")
		rounds   = flag.Int("rounds", 3, "rounds to generate")
		updates  = flag.Int("updates", 10000, "requests per round for -gen")
		out      = flag.String("out", "trace.ftrc", "output path for -gen")
		backend  = flag.String("backend", "fedora", "backend for -replay")
		eps      = flag.Float64("eps", 1.0, "epsilon for -replay")
		seed     = flag.Int64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fedora-trace:", err)
		os.Exit(1)
	}
	switch {
	case *gen:
		w, ok := dataset.WorkloadByKey(*workload)
		if !ok {
			fail(fmt.Errorf("unknown workload %q", *workload))
		}
		sc, ok := dataset.ScaleByName(*scale)
		if !ok {
			fail(fmt.Errorf("unknown scale %q", *scale))
		}
		const featPerClient = 100
		clients := *updates / featPerClient
		if clients < 1 {
			clients = 1
		}
		rng := rand.New(rand.NewSource(*seed))
		tr := &trace.Trace{NumRows: sc.Rows}
		for r := 0; r < *rounds; r++ {
			tr.Rounds = append(tr.Rounds, w.GenRound(sc.Rows, clients, featPerClient, rng))
		}
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := trace.Write(f, tr); err != nil {
			fail(err)
		}
		st := tr.Summarize()
		fmt.Printf("wrote %s: %d rounds, %d requests (%d real), %.0f unique rows/round\n",
			*out, st.Rounds, st.TotalRequests, st.RealRequests, st.UniquePerRnd)
	case *info != "":
		tr := load(*info, fail)
		st := tr.Summarize()
		fmt.Printf("rows:            %d\n", tr.NumRows)
		fmt.Printf("rounds:          %d\n", st.Rounds)
		fmt.Printf("total requests:  %d\n", st.TotalRequests)
		fmt.Printf("real requests:   %d (%.1f%% padding)\n", st.RealRequests,
			100*float64(st.TotalRequests-st.RealRequests)/float64(max(1, st.TotalRequests)))
		fmt.Printf("unique rows/rnd: %.0f\n", st.UniquePerRnd)
	case *replay != "":
		tr := load(*replay, fail)
		if err := tr.Validate(); err != nil {
			fail(err)
		}
		var be fedora.Backend
		switch *backend {
		case "fedora":
			be = fedora.BackendFedora
		case "pathoram+":
			be = fedora.BackendPathORAMPlus
		case "dram":
			be = fedora.BackendDRAM
		default:
			fail(fmt.Errorf("unknown backend %q", *backend))
		}
		maxClients, maxFeat := 1, 1
		hideCount := false
		for _, round := range tr.Rounds {
			if len(round) > maxClients {
				maxClients = len(round)
			}
			for _, c := range round {
				if len(c) > maxFeat {
					maxFeat = len(c)
				}
				for _, row := range c {
					if row == fedora.DummyRequest {
						hideCount = true
					}
				}
			}
		}
		ctrl, err := fedora.New(fedora.Config{
			Backend: be, NumRows: tr.NumRows, Dim: 16,
			Epsilon: *eps, HideCount: hideCount,
			MaxClientsPerRound: maxClients, MaxFeaturesPerClient: maxFeat,
			Seed: *seed, Phantom: true,
		})
		if err != nil {
			fail(err)
		}
		for ri, round := range tr.Rounds {
			r, err := ctrl.BeginRound(round)
			if err != nil {
				fail(err)
			}
			st, err := r.Finish()
			if err != nil {
				fail(err)
			}
			fmt.Printf("round %d: K=%d k_union=%d k=%d overhead=%v\n",
				ri+1, st.K, st.KUnion, st.KSampled, st.Total().Round(1e6))
		}
		ssd := ctrl.SSDDevice().Stats()
		perRound := ssd.BytesWritten / uint64(len(tr.Rounds))
		life := costmodel.SSDLifetime(ctrl.MainORAMBytes(), perRound, experiments.FLRoundBaseline)
		fmt.Printf("SSD written/round: %.1f MB; projected lifetime %.1f months\n",
			float64(perRound)/1e6, costmodel.Months(life))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string, fail func(error)) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fail(err)
	}
	return tr
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
