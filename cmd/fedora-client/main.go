// Command fedora-client is a CLI for the FEDORA serving API, built on
// the internal/client SDK (v2 protocol: batched transfers, retries
// with capped exponential backoff, idempotency keys).
//
//	fedora-client -server http://localhost:8080 status
//	fedora-client -server http://localhost:8080 round -requests "1,2,3;4,5"
//	fedora-client -server http://localhost:8080 bench -clients 8 -k 32
//
// The bench subcommand runs one FL round twice — over the deprecated
// per-row v1 API and over the batched v2 API — and reports the HTTP
// request counts and wall time of each, demonstrating the O(K) → O(K/
// batch) request reduction of the batched protocol. It then replays the
// same round once per wire upload codec (see internal/wire) and reports
// the gradient-upload bytes each codec puts on the wire.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/wire"
)

func main() {
	var (
		server  = flag.String("server", "http://127.0.0.1:8080", "server base URL")
		timeout = flag.Duration("timeout", 30*time.Second, "per-attempt HTTP timeout")
		retries = flag.Int("retries", 4, "max retries per request")
		batch   = flag.Int("batch", 64, "rows per batched transfer")
	)
	flag.Parse()

	c, err := client.New(client.Config{
		BaseURL:    *server,
		Timeout:    *timeout,
		MaxRetries: *retries,
		BatchSize:  *batch,
	})
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "subcommands: status | cluster | round -requests \"1,2,3;4,5\" | bench -clients N -k K")
		os.Exit(2)
	}
	switch args[0] {
	case "status":
		runStatus(ctx, c)
	case "cluster":
		runCluster(ctx, c)
	case "round":
		fs := flag.NewFlagSet("round", flag.ExitOnError)
		requests := fs.String("requests", "", "per-client row lists: rows comma-separated, clients semicolon-separated")
		deadline := fs.Duration("deadline", 0, "round deadline (0 = none)")
		fs.Parse(args[1:])
		runRound(ctx, c, *requests, *deadline)
	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		clients := fs.Int("clients", 8, "simulated clients per round")
		k := fs.Int("k", 32, "rows per client")
		seed := fs.Int64("seed", 1, "row-selection seed")
		fs.Parse(args[1:])
		runBench(ctx, c, *server, *clients, *k, *seed)
	default:
		fatal(fmt.Errorf("unknown subcommand %q", args[0]))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedora-client:", err)
	os.Exit(1)
}

func runStatus(ctx context.Context, c *client.Client) {
	st, err := c.Status(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("backend:           %s\n", st.Backend)
	fmt.Printf("shards:            %d\n", st.Shards)
	fmt.Printf("rows:              %d\n", st.NumRows)
	fmt.Printf("round:             %d (in progress: %v", st.Round, st.RoundInProgress)
	if st.CurrentRoundID != "" {
		fmt.Printf(", id %s", st.CurrentRoundID)
	}
	fmt.Println(")")
	fmt.Printf("effective epsilon: %s\n", st.EffectiveEpsilon)
	fmt.Printf("main ORAM bytes:   %d\n", st.MainORAMBytes)
	fmt.Printf("DRAM bytes:        %d\n", st.DRAMBytes)
	fmt.Printf("SSD read/written:  %d / %d\n", st.SSDBytesRead, st.SSDBytesWritten)

	// Health comes from /healthz, not /v2/status — without it a server
	// with quarantined shards prints exactly like a healthy one while
	// silently serving degraded rounds (every row on a quarantined shard
	// comes back unavailable).
	hz, err := c.Healthz(ctx)
	if err != nil {
		fmt.Printf("health:            unknown (%v)\n", err)
		return
	}
	quarantined := 0
	for _, sh := range hz.Shards {
		if sh.Quarantined {
			quarantined++
		}
	}
	fmt.Printf("health:            %s", hz.Status)
	if quarantined > 0 {
		fmt.Printf(" (%d/%d shards quarantined)", quarantined, len(hz.Shards))
	}
	fmt.Println()
	for _, sh := range hz.Shards {
		if sh.Quarantined {
			fmt.Printf("  shard %d (%d rows) quarantined: %s\n", sh.Shard, sh.Rows, sh.Cause)
		}
	}
	if hz.RecoverError != "" {
		fmt.Printf("recover error:     %s\n", hz.RecoverError)
	}
}

// runCluster prints a coordinator's placement map and per-node health.
func runCluster(ctx context.Context, c *client.Client) {
	st, err := c.ClusterStatus(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cluster: %d shards over %d rows, round %d, %s\n",
		st.Shards, st.NumRows, st.Round, st.Status)
	// Leader/epoch exists only on HA-enabled coordinators; a 404 from an
	// older (or non-durable) one just means there is nothing to print.
	if ld, err := c.ClusterLeader(ctx); err == nil {
		fmt.Printf("leader:  role %s, coordinator epoch %d", ld.Role, ld.Epoch)
		if ld.LeaderURL != "" {
			fmt.Printf(", leader %s", ld.LeaderURL)
		}
		fmt.Println()
	}
	fmt.Printf("%-4s %-28s %-12s %-16s %-10s %-10s\n",
		"node", "url", "shards", "rows", "state", "health")
	for i, n := range st.Nodes {
		health := n.Health
		if health == "" {
			health = "-"
		}
		shardRange := fmt.Sprintf("[%d,%d)", n.FirstShard, n.FirstShard+n.ShardCount)
		rowRange := fmt.Sprintf("[%d,%d)", n.FirstRow, n.FirstRow+n.Rows)
		fmt.Printf("%-4d %-28s %-12s %-16s %-10s %-10s\n",
			i, n.URL, shardRange, rowRange, n.State, health)
		if len(n.Quarantined) > 0 {
			fmt.Printf("     quarantined shards: %v\n", n.Quarantined)
		}
		if n.LastError != "" {
			fmt.Printf("     last error: %s\n", n.LastError)
		}
	}
}

// parseRequests turns "1,2,3;4,5" into [][]uint64{{1,2,3},{4,5}}.
func parseRequests(s string) ([][]uint64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty -requests")
	}
	var out [][]uint64
	for _, clientPart := range strings.Split(s, ";") {
		var rows []uint64
		for _, rowPart := range strings.Split(clientPart, ",") {
			rowPart = strings.TrimSpace(rowPart)
			if rowPart == "" {
				continue
			}
			row, err := strconv.ParseUint(rowPart, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad row %q: %w", rowPart, err)
			}
			rows = append(rows, row)
		}
		out = append(out, rows)
	}
	return out, nil
}

// runRound begins a round from the given requests, downloads every
// requested row (batched), and finishes, printing the round stats.
func runRound(ctx context.Context, c *client.Client, requests string, deadline time.Duration) {
	reqs, err := parseRequests(requests)
	if err != nil {
		fatal(err)
	}
	info, err := c.Begin(ctx, api.BeginV2Request{Requests: reqs, DeadlineMS: deadline.Milliseconds()})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("round %s (controller round %d) begun\n", info.RoundID, info.Round)

	var all []uint64
	for _, rows := range reqs {
		all = append(all, rows...)
	}
	entries, err := c.Entries(ctx, info.RoundID, all)
	if err != nil {
		fatal(err)
	}
	served, unavailable := 0, 0
	for _, e := range entries {
		switch {
		case e.OK:
			served++
		case e.Unavailable:
			unavailable++
		}
	}
	lost := len(entries) - served - unavailable
	fmt.Printf("downloaded %d rows (%d served, %d lost)\n", len(entries), served, lost)
	if unavailable > 0 {
		fmt.Printf("DEGRADED ROUND: %d row(s) unavailable (owning shard quarantined or node fenced)\n", unavailable)
	}

	done, err := c.FinishRound(ctx, info.RoundID)
	if err != nil {
		fatal(err)
	}
	if done.Stats != nil {
		st := done.Stats
		fmt.Printf("finished: k=%d union=%d sampled=%d dummy=%d lost=%d chunks=%d eps=%s overhead=%s\n",
			st.K, st.KUnion, st.KSampled, st.Dummy, st.Lost, st.Chunks, st.RoundEpsilon, st.TotalOverhead)
	} else {
		fmt.Println("finished")
	}
	stats := c.Stats()
	fmt.Printf("http: %d requests, %d retries, %d failures\n", stats.Requests, stats.Retries, stats.Failures)
}

// runBench measures one identical round driven over the v1 per-row API
// and over the v2 batched API.
func runBench(ctx context.Context, c *client.Client, server string, clients, k int, seed int64) {
	st, err := c.Status(ctx)
	if err != nil {
		fatal(err)
	}
	if st.RoundInProgress {
		fatal(fmt.Errorf("a round is already in progress; bench needs an idle server"))
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([][]uint64, clients)
	for i := range reqs {
		rows := make([]uint64, k)
		for j := range rows {
			rows[j] = uint64(rng.Int63n(int64(st.NumRows)))
		}
		reqs[i] = rows
	}
	total := clients * k

	// The embedding dimension (for the zero gradients bench uploads)
	// comes from the evaluation backdoor.
	row0, err := c.PeekRow(ctx, 0)
	if err != nil {
		fatal(err)
	}
	zero := make([]float32, len(row0))

	// --- v1: one HTTP request per row download and per gradient row.
	v1 := api.NewClient(server)
	v1Requests := 0
	v1Start := time.Now()
	if err := v1.BeginRound(reqs); err != nil {
		fatal(err)
	}
	v1Requests++
	for _, rows := range reqs {
		for _, row := range rows {
			if _, _, err := v1.Entry(row); err != nil {
				fatal(err)
			}
			v1Requests++
		}
	}
	for _, rows := range reqs {
		for _, row := range rows {
			if _, err := v1.SubmitGradient(row, zero, 1); err != nil {
				fatal(err)
			}
			v1Requests++
		}
	}
	if _, err := v1.FinishRound(); err != nil {
		fatal(err)
	}
	v1Requests++
	v1Elapsed := time.Since(v1Start)

	// --- v2: batched transfers through the SDK.
	before := c.Stats()
	v2Start := time.Now()
	info, err := c.BeginRound(ctx, reqs)
	if err != nil {
		fatal(err)
	}
	for _, rows := range reqs {
		if _, err := c.Entries(ctx, info.RoundID, rows); err != nil {
			fatal(err)
		}
	}
	for _, rows := range reqs {
		grads := make([]api.GradientRequest, len(rows))
		for j, row := range rows {
			grads[j] = api.GradientRequest{Row: row, Grad: zero, Samples: 1}
		}
		if _, err := c.SubmitGradients(ctx, info.RoundID, grads); err != nil {
			fatal(err)
		}
	}
	if _, err := c.FinishRound(ctx, info.RoundID); err != nil {
		fatal(err)
	}
	v2Elapsed := time.Since(v2Start)
	after := c.Stats()
	v2Requests := int(after.Requests - before.Requests)

	fmt.Printf("bench: %d clients × %d rows = %d row transfers each way\n", clients, k, total)
	fmt.Printf("%-22s %12s %14s\n", "protocol", "http reqs", "wall time")
	fmt.Printf("%-22s %12d %14v\n", "v1 (per-row)", v1Requests, v1Elapsed.Round(time.Millisecond))
	fmt.Printf("%-22s %12d %14v\n", "v2 (batched)", v2Requests, v2Elapsed.Round(time.Millisecond))
	fmt.Printf("request reduction: %.1f×\n", float64(v1Requests)/float64(v2Requests))

	// --- wire upload plane: drive the same round once per codec and
	// report what the gradient upload leg costs on the wire.
	runWireBench(ctx, c, st, reqs, len(row0), seed)
}

// runWireBench runs one round per wire codec over the bench's request
// set (zero deltas, one sample per row) and reports the gradient-upload
// bytes each codec puts on the wire. The masked codec uploads the FULL
// table per client, so it is skipped when the round's payloads would
// exceed 64 MB — point the bench at a smaller table (e.g. -fl-quick) to
// include it.
func runWireBench(ctx context.Context, c *client.Client, st api.StatusResponse, reqs [][]uint64, dim int, seed int64) {
	clients := len(reqs)
	// Per-client row sets must be strictly ascending and duplicate-free
	// for the upload plane; the union is the sparse codecs' domain.
	rows := make([][]uint64, clients)
	union := []uint64(nil)
	seen := map[uint64]bool{}
	for i, rq := range reqs {
		dedup := map[uint64]bool{}
		for _, r := range rq {
			dedup[r] = true
			seen[r] = true
		}
		rows[i] = make([]uint64, 0, len(dedup))
		for r := range dedup {
			rows[i] = append(rows[i], r)
		}
		sort.Slice(rows[i], func(a, b int) bool { return rows[i][a] < rows[i][b] })
	}
	for r := range seen {
		union = append(union, r)
	}
	sort.Slice(union, func(a, b int) bool { return union[a] < union[b] })

	fmt.Printf("\nwire upload plane (gradient leg, %d clients, zero deltas):\n", clients)
	fmt.Printf("%-22s %14s %14s\n", "codec", "upload bytes", "per client")
	for _, codec := range wire.Codecs() {
		if codec == wire.CodecMasked {
			if full := st.NumRows * uint64(dim+1) * 4 * uint64(clients); full > 64<<20 {
				fmt.Printf("%-22s %14s (full-table payloads would be %d MB)\n",
					string(codec), "skipped", full>>20)
				continue
			}
		}
		bytes, err := runWireBenchRound(ctx, c, st.NumRows, dim, codec, rows, union, seed)
		if err != nil {
			fatal(fmt.Errorf("wire bench %s: %w", codec, err))
		}
		fmt.Printf("%-22s %14d %14d\n", string(codec), bytes, bytes/uint64(clients))
	}
}

// runWireBenchRound drives one full upload-plane round: begin, encode
// and upload every client's payload, run the (dropout-free) unmasking
// round that applies the aggregate, and finish.
func runWireBenchRound(ctx context.Context, c *client.Client, numRows uint64, dim int, codec wire.Codec, rows [][]uint64, union []uint64, seed int64) (uint64, error) {
	info, err := c.BeginRound(ctx, rows)
	if err != nil {
		return 0, err
	}
	plan, err := wire.NewPlan(wire.Params{
		Codec:      codec,
		NumRows:    numRows,
		Dim:        dim,
		Round:      info.Round,
		Roster:     len(rows),
		SessionKey: wire.DeriveSessionKey(seed, info.Round),
	}, union)
	if err != nil {
		return 0, err
	}
	var total uint64
	for i, rs := range rows {
		deltas := make([][]float32, len(rs))
		for j := range deltas {
			deltas[j] = make([]float32, dim)
		}
		payload, _, err := plan.Encode(i, rs, deltas, 1)
		if err != nil {
			return 0, err
		}
		batchID := fmt.Sprintf("wire-bench-r%d-c%d", info.Round, i)
		if err := c.SubmitWireUpload(ctx, info.RoundID, batchID, payload); err != nil {
			return 0, err
		}
		total += uint64(len(payload))
	}
	// No dropouts: zero reveals, but the unmask round still applies the
	// reconstructed per-row sums into the server's round.
	if _, err := c.Unmask(ctx, info.RoundID, nil); err != nil {
		return 0, err
	}
	if _, err := c.FinishRound(ctx, info.RoundID); err != nil {
		return 0, err
	}
	return total, nil
}
