# fedora-go — common workflows.

GO ?= go

.PHONY: all build test test-short bench vet fmt check crash-test chaos-test storage-test cluster-test wire-test prefetch-test ha-test experiments table1 clean

all: build test

# CI gate: static checks + the race detector over the concurrent layers
# (the FL worker pool, the fedora round pipeline, the sharded ORAM
# engine, the HTTP API server, the retrying HTTP client SDK, and the
# wire upload plane).
check:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test -race ./internal/fl/... ./internal/fedora/... ./internal/shard/... ./internal/api/... ./internal/client/... ./internal/wire/...

# Durability gate: kill-resume fingerprint identity, corrupt-checkpoint
# fallback, torn-WAL replay, every Snapshot/Restore round trip, and a
# short pass of the persist-format fuzzers.
crash-test:
	$(GO) test -count=1 -run 'Snapshot|Resume|Restore|WAL|Checkpoint|Model' \
		./internal/persist/... ./internal/fl/... ./internal/fedora/... \
		./internal/raworam/... ./internal/pathoram/... ./internal/bufferoram/... \
		./internal/device/... ./internal/position/... ./internal/stash/... ./internal/tee/...
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeCheckpoint -fuzztime=10s ./internal/persist/
	$(GO) test -run=Fuzz -fuzz=FuzzReadWAL -fuzztime=10s ./internal/persist/

# Chaos gate: the fault-injection engine, shard quarantine + recovery,
# overload shedding, and the capstone — a remote FL run over HTTP under
# a fault plan (transient SSD errors + bit-flip corruption) — all under
# the race detector.
chaos-test:
	$(GO) test -race -count=1 ./internal/fault/...
	$(GO) test -race -count=1 -run 'Chaos|Quarantine|Health|Overload|RetryAfter|Shed|Integrity' \
		./internal/shard/... ./internal/api/... ./internal/client/... ./internal/tee/... ./internal/fedora/...
	$(GO) test -race -count=1 -run Chaos .

# Storage gate: the file-backed device against the simulator (contents,
# accounting, snapshots, fsync policies, error paths) plus the
# cross-backend FL parity and kill-resume tests. Runs fine on tmpfs —
# O_DIRECT is requested opportunistically and falls back to buffered.
storage-test:
	$(GO) test -count=1 -run 'Storage|FileDevice' \
		./internal/storage/... ./internal/fedora/... ./internal/fl/...

# Wire gate: the gradient upload plane — codec round trips, pairwise
# masking + dropout unmasking, cross-codec model parity (local,
# in-process trainer, remote HTTP, cluster fan-out), the upload-codec
# server policy, and a short pass of the payload fuzzers. All under the
# race detector.
wire-test:
	$(GO) test -race -count=1 ./internal/wire/... ./internal/secagg/...
	$(GO) test -race -count=1 -run 'Wire|UploadCodec' \
		./internal/fl/... ./internal/api/... ./internal/client/... ./internal/cluster/...
	$(GO) test -run=Fuzz -fuzz=FuzzAggregatorParse -fuzztime=10s ./internal/wire/
	$(GO) test -run=Fuzz -fuzz=FuzzSparseRoundTrip -fuzztime=10s ./internal/wire/

# Prefetch gate: the lookahead pipeline — two-phase stage/begin contract,
# bit-identical fingerprints prefetch on/off (in-process, over HTTP, and
# through the cluster coordinator), snapshot portability across modes,
# kill-resume through a mid-stage boundary, quarantine of a shard with an
# in-flight prefetch, and the stage endpoint's idempotency/409 semantics.
# All under the race detector (the fetcher/serve streaming is the most
# concurrent code in the repo).
prefetch-test:
	$(GO) test -race -count=1 -run 'Prefetch|Stage' \
		./internal/fedora/... ./internal/fl/... ./internal/api/... \
		./internal/client/... ./internal/cluster/...

# Cluster gate: the distributed shard-placement subsystem — placement
# validation and round routing, remote-trainer fingerprint parity and
# byte-identical checkpoint assembly over httptest members, node loss →
# degraded rounds → join-time shard migration, and the capstone: a real
# fedora-coordinator + 2 member fedora-server processes serving one
# row-space with single-process model parity and node-kill degradation.
# All under the race detector.
cluster-test:
	$(GO) test -race -count=1 ./internal/cluster/...

# High-availability gate: epoch fencing on the member API, SDK endpoint
# failover + deadline-capped backoff, the coordinator round WAL (raw
# frames, torn tails, replay parity), standby promotion on lease expiry,
# corrupt-checkpoint fallback, split-brain rejection of a stale primary,
# and the capstone: a real primary/standby coordinator pair over 2
# member processes with the primary SIGKILLed mid-round — the failed-over
# model must match an uninterrupted run bit for bit. All under the race
# detector.
ha-test:
	$(GO) test -race -count=1 -run 'Epoch|Failover|Backoff|RawWAL|HA|StalePrimary|Promotion|StandbyPromotes|ProbeDelay' \
		./internal/persist/... ./internal/api/... ./internal/client/... ./internal/cluster/...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One testing.B benchmark per paper table/figure + primitive microbenches.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every figure/ablation (writes results/).
experiments: build
	mkdir -p results
	$(GO) run ./cmd/fedora-bench -all -csv results/sweep.csv | tee results/perf.txt

# The FL accuracy study (Table 1). ~15 min; add QUICK=1 for a fast pass.
table1: build
	mkdir -p results
	$(GO) run ./cmd/fedora-train -table1 $(if $(QUICK),-quick,) | tee results/table1.txt

clean:
	rm -f trace.ftrc sweep.csv
