# fedora-go — common workflows.

GO ?= go

.PHONY: all build test test-short bench vet fmt experiments table1 clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One testing.B benchmark per paper table/figure + primitive microbenches.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every figure/ablation (writes results/).
experiments: build
	mkdir -p results
	$(GO) run ./cmd/fedora-bench -all -csv results/sweep.csv | tee results/perf.txt

# The FL accuracy study (Table 1). ~15 min; add QUICK=1 for a fast pass.
table1: build
	mkdir -p results
	$(GO) run ./cmd/fedora-train -table1 $(if $(QUICK),-quick,) | tee results/table1.txt

clean:
	rm -f trace.ftrc sweep.csv
