// Package repro's top-level benchmarks regenerate one measurement point
// per paper table/figure (run the cmd/fedora-bench and cmd/fedora-train
// binaries for the full sweeps) plus microbenchmarks of the core
// primitives. Custom metrics attach the paper's units to each bench:
// lifetime-months, overhead-pct, AUC, etc.
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fdp"
	"repro/internal/fedora"
	"repro/internal/fl"
	"repro/internal/obliv"
	"repro/internal/pathoram"
	"repro/internal/raworam"
	"repro/internal/ringoram"
	"repro/internal/secagg"
	"repro/internal/tee"

	"repro/internal/device"
)

// BenchmarkFig3PDF builds the six Eq.3 distributions of Figure 3.
func BenchmarkFig3PDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range experiments.Fig3Panels {
			m := fdp.Mechanism{Epsilon: p.Epsilon, Shape: p.Shape}
			if _, err := m.Distribution(experiments.Fig3K, experiments.Fig3KUnion); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchPerf runs one Small/10K perf point and reports paper metrics.
func benchPerf(b *testing.B, sys experiments.System, w dataset.Workload) experiments.PerfResult {
	b.Helper()
	var last experiments.PerfResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPerf(experiments.PerfConfig{
			Scale: dataset.Scales[0], Updates: 10_000, System: sys,
			Workload: w, Rounds: 1, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	return last
}

// BenchmarkFig7Lifetime measures the Figure 7 point (Small/10K) for
// FEDORA(ε=1) and reports the projected SSD lifetime.
func BenchmarkFig7Lifetime(b *testing.B) {
	res := benchPerf(b, experiments.SysFedoraEps1, dataset.PerfWorkloads[1])
	b.ReportMetric(res.LifetimeMonths(), "lifetime-months")
}

// BenchmarkFig7LifetimePathORAMPlus is the same point for the baseline.
func BenchmarkFig7LifetimePathORAMPlus(b *testing.B) {
	res := benchPerf(b, experiments.SysPathORAMPlus, dataset.PerfWorkloads[1])
	b.ReportMetric(res.LifetimeMonths(), "lifetime-months")
}

// BenchmarkFig8Latency measures the Figure 8 point (Small/10K, FEDORA
// ε=1) and reports the round-overhead percentage.
func BenchmarkFig8Latency(b *testing.B) {
	res := benchPerf(b, experiments.SysFedoraEps1, dataset.PerfWorkloads[1])
	b.ReportMetric(res.OverheadPct(), "overhead-pct")
}

// BenchmarkFig9Cost computes the Figure 9 normalization for the Small
// configuration and reports FEDORA(ε=1)'s relative hardware cost.
func BenchmarkFig9Cost(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig9(experiments.SweepOptions{Quick: true, Rounds: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == experiments.SysFedoraEps1.Name {
				rel = r.Rel.HardwareCost
			}
		}
	}
	b.ReportMetric(100*rel, "hw-cost-pct-of-dram")
}

// BenchmarkFig10Scratchpad measures the scratchpad ablation slowdown.
func BenchmarkFig10Scratchpad(b *testing.B) {
	var slow float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig10(experiments.SweepOptions{Quick: true, Rounds: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		slow = rows[0].Slowdown
	}
	b.ReportMetric(slow, "no-sram-slowdown-x")
}

// BenchmarkAblationBucketSize measures the Sec 6.6 bucket sweep.
func BenchmarkAblationBucketSize(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunBucketAblation(experiments.SweepOptions{Rounds: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		gain = rows[len(rows)-1].LifetimeMonths / rows[0].LifetimeMonths
	}
	b.ReportMetric(gain, "16KB-vs-4KB-lifetime-x")
}

// BenchmarkTable1Accesses runs one FL training round (MovieLens-like,
// ε=1) through the full FEDORA pipeline — the unit of work behind every
// Table 1 cell — and reports the reduced-access percentage.
func BenchmarkTable1Accesses(b *testing.B) {
	cfg := dataset.MovieLensConfig()
	cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 400, 150, 20
	ds := dataset.Generate(cfg)
	tr, err := fl.New(fl.Config{
		Dataset: ds, Dim: 8, Hidden: 16, UsePrivate: true,
		Epsilon: 1.0, ClientsPerRound: 20, LocalLR: 0.1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep fl.RoundReport
	for i := 0; i < b.N; i++ {
		rep, err = tr.RunRound()
		if err != nil {
			b.Fatal(err)
		}
	}
	if rep.K > 0 {
		b.ReportMetric(100*(1-float64(rep.KSampled)/float64(rep.K)), "reduced-accesses-pct")
	}
}

// BenchmarkRoundWorkers compares one FL round end-to-end at Workers=1
// (the old sequential hot path) against a GOMAXPROCS-sized worker pool.
// On multi-core the parallel round's wall clock beats sequential while —
// by construction of the client-order merge — producing bit-identical
// model state for identical seeds (fl.TestWorkerCountDeterminism is the
// correctness side of this claim).
func BenchmarkRoundWorkers(b *testing.B) {
	counts := []int{1, runtime.GOMAXPROCS(0)}
	if counts[1] == 1 {
		counts = counts[:1] // single-core: nothing to compare against
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := dataset.MovieLensConfig()
			cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 2000, 400, 60
			ds := dataset.Generate(cfg)
			tr, err := fl.New(fl.Config{
				Dataset: ds, Dim: 8, Hidden: 16, UsePrivate: true,
				Epsilon: 1.0, ClientsPerRound: 50, LocalEpochs: 2,
				LocalLR: 0.1, Seed: 1, Workers: w,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var rep fl.RoundReport
			for i := 0; i < b.N; i++ {
				rep, err = tr.RunRound()
				if err != nil {
					b.Fatal(err)
				}
			}
			if rep.Timings.Train > 0 {
				b.ReportMetric(float64(rep.Timings.Train.Microseconds()), "train-us/round")
			}
		})
	}
}

// BenchmarkRoundShards sweeps the sharded ORAM engine: the embedding
// table partitioned across S parallel per-shard ORAMs with an S-sized
// worker pool. The oram-read phase (union + ε-FDP sampling + main-ORAM
// reads, all per shard) is the part that scales; ε=0 keeps the model
// bit-identical across shard counts (fl.TestShardedFingerprintIdentity
// is the correctness side of this claim).
func BenchmarkRoundShards(b *testing.B) {
	for _, s := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			cfg := dataset.MovieLensConfig()
			cfg.NumItems, cfg.NumUsers, cfg.SamplesPerUser = 2000, 400, 60
			ds := dataset.Generate(cfg)
			tr, err := fl.New(fl.Config{
				Dataset: ds, Dim: 8, Hidden: 16, UsePrivate: true,
				Epsilon: 0, ClientsPerRound: 50, LocalEpochs: 2,
				LocalLR: 0.1, Seed: 1, Shards: s, ShardWorkers: s,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var rep fl.RoundReport
			for i := 0; i < b.N; i++ {
				rep, err = tr.RunRound()
				if err != nil {
					b.Fatal(err)
				}
			}
			if rep.Timings.ORAMRead > 0 {
				b.ReportMetric(float64(rep.Timings.ORAMRead.Microseconds()), "oram-read-us/round")
			}
		})
	}
}

// --- Core primitive microbenchmarks -----------------------------------

// BenchmarkPathORAMAccess measures one functional Path ORAM access
// (64-byte blocks, encrypted buckets).
func BenchmarkPathORAMAccess(b *testing.B) {
	var key [32]byte
	dev := device.NewDRAM(1 << 30)
	o, err := pathoram.New(pathoram.Config{
		NumBlocks: 1 << 16, BlockSize: 64, Seed: 1, Engine: tee.NewEngine(key),
	}, dev)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Write(uint64(i)&0xFFFF, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRAWORAMAOAccess measures one functional AO access + write-back
// pair on FEDORA's main ORAM.
func BenchmarkRAWORAMAOAccess(b *testing.B) {
	var key [32]byte
	ssd := device.NewSSD(1 << 33)
	dram := device.NewDRAM(1 << 30)
	o, err := raworam.New(raworam.Config{
		NumBlocks: 1 << 16, BlockSize: 64, Seed: 1, Engine: tee.NewEngine(key),
	}, ssd, dram)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i) & 0xFFFF
		data, _, err := o.AOAccess(id)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := o.WriteBack(id, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObliviousUnion16K measures the paper's chunk-sized oblivious
// union (the Θ(chunk²) scan of Sec 4.2) at a reduced 2K size; the cost
// model extrapolates quadratically.
func BenchmarkObliviousUnion2K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	reqs := make([]uint64, 2048)
	for i := range reqs {
		reqs[i] = uint64(rng.Intn(1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obliv.Union(reqs)
	}
}

// BenchmarkFDPSample measures drawing k from Eq. 3 at chunk scale.
func BenchmarkFDPSample(b *testing.B) {
	m := fdp.Mechanism{Epsilon: 1}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Sample(fedora.DefaultChunkSize, 8000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullRoundPhantom measures one complete phantom-mode FEDORA
// round at 10K updates (the Fig 7/8 measurement unit).
func BenchmarkFullRoundPhantom(b *testing.B) {
	ctrl, err := fedora.New(fedora.Config{
		NumRows: 10_000_000, Dim: 16, Epsilon: 1,
		MaxClientsPerRound: 100, MaxFeaturesPerClient: 100,
		Seed: 1, Phantom: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	w := dataset.PerfWorkloads[1]
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs := w.GenRound(10_000_000, 100, 100, rng)
		r, err := ctrl.BeginRound(reqs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ORAM design comparison benchmarks ---------------------------------

// BenchmarkORAMComparison contrasts the three tree-ORAM designs on the
// same functional write workload (1024 × 64 B blocks): Path ORAM reads
// and writes whole paths, Ring ORAM reads one slot per bucket, RAW ORAM
// (FL-friendly) writes only on scheduled evictions.
func BenchmarkORAMComparison(b *testing.B) {
	const n, bs = 1024, 64
	data := make([]byte, bs)
	b.Run("pathoram", func(b *testing.B) {
		dev := device.NewDRAM(1 << 31)
		o, err := pathoram.New(pathoram.Config{NumBlocks: n, BlockSize: bs, Seed: 1}, dev)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.Write(uint64(i)%n, data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ringoram", func(b *testing.B) {
		dev := device.NewDRAM(1 << 31)
		dram := device.NewDRAM(1 << 30)
		o, err := ringoram.New(ringoram.Config{NumBlocks: n, BlockSize: bs, Seed: 1}, dev, dram)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.Write(uint64(i)%n, data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raworam-flfriendly", func(b *testing.B) {
		ssd := device.NewSSD(1 << 32)
		dram := device.NewDRAM(1 << 30)
		o, err := raworam.New(raworam.Config{NumBlocks: n, BlockSize: bs, Seed: 1}, ssd, dram)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := uint64(i) % n
			d, _, err := o.AOAccess(id)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := o.WriteBack(id, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSecAggMask measures masking a 1K-float update for a 10-client
// roster.
func BenchmarkSecAggMask(b *testing.B) {
	var key [32]byte
	sess, err := secagg.NewSession(key, 10, 1024)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float32, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Mask(i%10, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecursiveMapLookup measures one fully-recursive position-map
// lookup (two chained ORAM levels over 64K entries).
func BenchmarkRecursiveMapLookup(b *testing.B) {
	dev := device.NewDRAM(1 << 30)
	rm, err := pathoram.NewRecursiveMap(pathoram.RecursiveMapConfig{
		NumBlocks: 1 << 16, NumLeaves: 1 << 14, EntriesPerBlock: 64,
		ThresholdBytes: 4096, Seed: 1,
	}, dev)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rm.GetSet(uint64(i)&0xFFFF, uint32(i)&0x3FFF)
	}
}
